package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Quick() }

func TestFig1SojournGrowsServiceFlat(t *testing.T) {
	res, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Service time is load-independent…
	if last.MeanSvc > first.MeanSvc*1.1 || last.MeanSvc < first.MeanSvc*0.9 {
		t.Fatalf("service time moved with load: %v → %v", first.MeanSvc, last.MeanSvc)
	}
	// …while tail sojourn grows with RPS.
	if last.P99Sojourn <= first.P99Sojourn {
		t.Fatalf("p99 sojourn did not grow: %v → %v", first.P99Sojourn, last.P99Sojourn)
	}
	if !strings.Contains(res.Render(), "Fig 1") {
		t.Fatal("render header missing")
	}
}

func TestFig2CategoriesMatchPaper(t *testing.T) {
	res, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 7 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	little := map[string]bool{}
	for _, a := range res.Apps {
		little[a.App] = a.LittleVariant
		if len(a.CDF) == 0 {
			t.Fatalf("%s: empty CDF", a.App)
		}
		if a.Median <= 0 || a.P90 < a.Median {
			t.Fatalf("%s: bad distribution summary %v/%v", a.App, a.Median, a.P90)
		}
	}
	// Table II's split: Masstree and ImgDNN have little/no variation; the
	// other five vary widely.
	for app, want := range map[string]bool{
		"masstree": true, "imgdnn": true,
		"moses": false, "sphinx": false, "xapian": false, "shore": false, "silo": false,
	} {
		if little[app] != want {
			t.Errorf("%s: littleVariant = %v, want %v", app, little[app], want)
		}
	}
}

func TestFig3OnlyMeaningfulInterpretationCorrelates(t *testing.T) {
	res, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"moses/phrase_chars": false,
		"moses/word_count":   true,
		"sphinx/path_len":    false,
		"sphinx/audio_mb":    true,
	}
	for _, row := range res.Rows {
		key := row.App + "/" + row.Feature
		if row.Correlates != want[key] {
			t.Errorf("%s: correlates=%v (ρ=%v), want %v", key, row.Correlates, row.Pearson, want[key])
		}
	}
}

func TestFig4TypeSeparation(t *testing.T) {
	res, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		ratios := map[string]float64{}
		for _, ty := range a.Types {
			ratios[ty.Type] = ty.MedianToTail
		}
		// PAYMENT and ORDER_STATUS rise nearly vertically (ratio ≈ 1);
		// NEW_ORDER and STOCK_LEVEL vary.
		for _, flat := range []string{"PAYMENT", "ORDER_STATUS"} {
			if ratios[flat] < 0.85 {
				t.Errorf("%s/%s: median:tail = %v, want ≈1", a.App, flat, ratios[flat])
			}
		}
		for _, wide := range []string{"NEW_ORDER", "STOCK_LEVEL"} {
			if ratios[wide] > 0.92 {
				t.Errorf("%s/%s: median:tail = %v, want visible variation", a.App, wide, ratios[wide])
			}
		}
	}
}

func TestFig5ApplicationFeatureCorrelations(t *testing.T) {
	res, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Pearson < 0.9 {
			t.Errorf("%s/%s/%s: ρ = %v, want strong", row.App, row.Feature, row.Subset, row.Pearson)
		}
		if row.FitSlope <= 0 {
			t.Errorf("%s/%s: non-positive slope %v", row.App, row.Feature, row.FitSlope)
		}
	}
	// Shore NEW_ORDER: the rollback subset's slope exceeds the commit
	// subset's (Fig 5b's two lines with different rates).
	var commit, rollback float64
	for _, row := range res.Rows {
		if row.App == "shore" && row.Subset == "NEW_ORDER (commit)" {
			commit = row.FitSlope
		}
		if row.App == "shore" && row.Subset == "NEW_ORDER (rollback)" {
			rollback = row.FitSlope
		}
	}
	if rollback <= commit {
		t.Errorf("rollback slope %v ≤ commit slope %v", rollback, commit)
	}
}

func TestFig6LatenessTable(t *testing.T) {
	res, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig6Row{}
	for _, row := range res.Rows {
		byKey[row.App+"/"+row.Feature] = row
	}
	if r, ok := byKey["xapian/doc_count"]; !ok || !r.Usable {
		t.Error("xapian/doc_count must be usable")
	}
	if r, ok := byKey["xapian/sorted_bytes"]; !ok || r.Usable {
		t.Error("xapian/sorted_bytes must be rejected by lateness")
	}
	if r, ok := byKey["shore/distinct_items"]; !ok || !r.Usable {
		t.Error("shore/distinct_items must be usable")
	}
}

func TestTableIVOverheadAndAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("NN training is slow")
	}
	res, err := TableIV(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ModelRow{}
	for _, row := range res.Rows {
		byKey[row.App+"/"+row.Model] = row
	}
	for _, app := range []string{"xapian", "moses", "sphinx"} {
		lr := byKey[app+"/LR"]
		nng := byKey[app+"/NN-G"]
		nnt := byKey[app+"/NN-T"]
		// LR trains orders of magnitude faster than either NN.
		if lr.TrainTime*20 > nng.TrainTime {
			t.Errorf("%s: LR train %v not ≪ NN-G train %v", app, lr.TrainTime, nng.TrainTime)
		}
		// LR inference is much cheaper.
		if lr.InferTime*5 > nng.InferTime {
			t.Errorf("%s: LR infer %v not ≪ NN-G infer %v", app, lr.InferTime, nng.InferTime)
		}
		// Accuracy is comparable: the NN buys at most a few points of R².
		if lr.R2 < 0.7 {
			t.Errorf("%s: LR R² = %v", app, lr.R2)
		}
		if nng.R2 > lr.R2+0.2 || nnt.R2 > lr.R2+0.2 {
			t.Errorf("%s: NN hugely outperforms LR (%v vs %v/%v) — not the paper's story",
				app, lr.R2, nng.R2, nnt.R2)
		}
		// RMSE/QoS stays in the single-digit-percent regime for all.
		if lr.RMSEoQoS > 0.10 {
			t.Errorf("%s: LR RMSE/QoS = %v", app, lr.RMSEoQoS)
		}
	}
}

func TestFig8LRSmoothNNWiggles(t *testing.T) {
	if testing.Short() {
		t.Skip("NN training is slow")
	}
	res, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 50 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// A line has (near-)zero curvature; the NN fit wiggles more.
	if res.LRRoughness > res.NNGRoughness {
		t.Errorf("LR roughness %v > NN-G roughness %v", res.LRRoughness, res.NNGRoughness)
	}
	// All three fits track the truth within 25% at mid-range.
	for _, p := range res.Points {
		if p.DocCount < 100 || p.DocCount > 500 {
			continue
		}
		for name, v := range map[string]float64{"LR": p.LR, "NNG": p.NNG, "NNT": p.NNT} {
			if v < p.Truth*0.75 || v > p.Truth*1.25 {
				t.Fatalf("d=%v: %s fit %v vs truth %v", p.DocCount, name, v, p.Truth)
			}
		}
	}
}

func TestFig9ConvergenceByN1000(t *testing.T) {
	res, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		last := a.Points[len(a.Points)-1]
		prev := a.Points[len(a.Points)-2]
		// Converged: the last doubling of N changes R² by < 0.02.
		if last.R2-prev.R2 > 0.02 {
			t.Errorf("%s: R² still improving at N=1000 (%v → %v)", a.App, prev.R2, last.R2)
		}
		if last.R2 < 0.5 {
			t.Errorf("%s: converged R² = %v, too low", a.App, last.R2)
		}
	}
}

func TestFig11HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	cfg := quickCfg()
	res, err := Fig11(cfg, []string{"xapian"})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Apps[0]
	if len(a.Points) != len(cfg.Loads) {
		t.Fatalf("points = %d", len(a.Points))
	}
	for _, p := range a.Points {
		// Every manager saves power versus the unmanaged system.
		for _, m := range ManagerNames {
			if p.PowerW[m] >= p.MaxFreqW*1.02 {
				t.Errorf("load %v: %s power %v ≥ maxfreq %v", p.Load, m, p.PowerW[m], p.MaxFreqW)
			}
		}
		// ReTail never drops requests and meets QoS.
		if p.DropRate["retail"] != 0 || p.DropRate["rubik"] != 0 {
			t.Errorf("load %v: retail/rubik dropped requests", p.Load)
		}
		if !p.QoSMet["retail"] {
			t.Errorf("load %v: ReTail violated QoS (tail %v)", p.Load, p.Tail["retail"])
		}
	}
	// ReTail saves power on average vs Rubik (Xapian is an app-feature
	// workload, the case the paper highlights).
	if a.AvgSavingVsRubik <= 0 {
		t.Errorf("avg saving vs rubik = %v, want positive", a.AvgSavingVsRubik)
	}
	// Table V ordering for an app-feature workload: ReTail's RMSE is the
	// smallest, Rubik's the largest.
	if !(a.RMSE["retail"] < a.RMSE["gemini"] && a.RMSE["gemini"] < a.RMSE["rubik"]) {
		t.Errorf("Table V ordering broken: retail=%v gemini=%v rubik=%v",
			a.RMSE["retail"], a.RMSE["gemini"], a.RMSE["rubik"])
	}
	// Gemini drops grow with load.
	drops := []float64{}
	for _, p := range a.Points {
		drops = append(drops, p.DropRate["gemini"])
	}
	if drops[len(drops)-1] < drops[0] {
		t.Errorf("gemini drops did not grow with load: %v", drops)
	}
}

func TestFig12AppFeaturesMatter(t *testing.T) {
	if testing.Short() {
		t.Skip("decomposition sweep is slow")
	}
	cfg := quickCfg()
	cfg.Loads = []float64{0.6}
	res, err := Fig12(cfg, "xapian")
	if err != nil {
		t.Fatal(err)
	}
	get := func(space, mech string) (Fig12Cell, bool) {
		for _, c := range res.Cells {
			if c.FeatureSpace == space && c.Mechanism == mech {
				return c, true
			}
		}
		return Fig12Cell{}, false
	}
	full, ok1 := get("request+app", "lr-alg1")
	reqOnly, ok2 := get("request-only", "lr-alg1")
	if !ok1 || !ok2 {
		t.Fatal("missing cells")
	}
	// Xapian's predictive feature is an application feature: the full
	// feature space must save power over the request-only space at equal
	// QoS compliance.
	if !full.QoSMet {
		t.Errorf("full-space lr-alg1 violates QoS (tail %v)", full.Tail)
	}
	if full.PowerW >= reqOnly.PowerW {
		t.Errorf("request+app power %v ≥ request-only %v — app features did not help",
			full.PowerW, reqOnly.PowerW)
	}
	// Fine-grained LR beats the coarse controller in the full space.
	coarse, ok := get("request+app", "coarse")
	if !ok {
		t.Fatal("missing coarse cell")
	}
	if full.PowerW >= coarse.PowerW {
		t.Errorf("lr-alg1 power %v ≥ coarse %v", full.PowerW, coarse.PowerW)
	}
	if !strings.Contains(res.Render(), "Fig 12") {
		t.Fatal("render")
	}
}

func TestFig13ReTailSavesOverPARTIES(t *testing.T) {
	if testing.Short() {
		t.Skip("colocation timeline is slow")
	}
	res, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingPercent < 0.10 {
		t.Errorf("ReTail-over-PARTIES saving = %v, want ≥ 10%%", res.SavingPercent)
	}
	for app, met := range res.QoSMet {
		if !met {
			t.Errorf("%s violated QoS under colocation", app)
		}
	}
	if len(res.Points) < 20 {
		t.Fatalf("timeline too sparse: %d", len(res.Points))
	}
}

func TestFig14DriftRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drift timeline is slow")
	}
	res, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedBefore {
		t.Error("tail violated QoS before interference onset")
	}
	if res.Retrains == 0 {
		t.Error("no retraining despite drift")
	}
	// The quick configuration's small worker pool and low RPS slow the
	// detector's evidence accumulation; the paper-resolution run recovers
	// in ≈3 s (see EXPERIMENTS.md).
	if res.RecoverySeconds > 9.5 {
		t.Errorf("recovery took %vs", res.RecoverySeconds)
	}
	if !res.QoSMetAfter {
		t.Error("tail not back under QoS by the end")
	}
}

func TestOverheadAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead run is slow")
	}
	res, err := Overhead(quickCfg(), "xapian")
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 || res.Inferences == 0 {
		t.Fatal("no decisions recorded")
	}
	if res.InferencesPerDecide < 1 {
		t.Fatalf("inferences per decision = %v", res.InferencesPerDecide)
	}
	// Paper: 5–100 µs per decision (avg ≈ 25 µs); allow a broad band.
	if res.MeanDecisionCost < 5e-6 || res.MeanDecisionCost > 500e-6 {
		t.Fatalf("mean decision cost = %v", res.MeanDecisionCost)
	}
	if res.Transitions == 0 {
		t.Fatal("no frequency transitions")
	}
}

func TestRenderersDoNotPanic(t *testing.T) {
	cfg := quickCfg()
	r2, _ := Fig2(cfg)
	r3, _ := Fig3(cfg)
	r4, _ := Fig4(cfg)
	r5, _ := Fig5(cfg)
	r6, _ := Fig6(cfg)
	for _, s := range []string{r2.Render(), r3.Render(), r4.Render(), r5.Render(), r6.Render()} {
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
}

func TestAppNames(t *testing.T) {
	names := AppNames()
	if len(names) != 7 {
		t.Fatalf("apps = %v", names)
	}
}

// Experiments are deterministic for a fixed seed — a regression guard for
// accidental global-RNG usage anywhere in the stack.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := quickCfg()
	a, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("Fig2 not deterministic")
	}
	s1, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Render() != s2.Render() {
		t.Fatal("Fig5 not deterministic")
	}
}
