package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"retail/internal/obs"
	"retail/internal/telemetry"
)

// obsFleetConfig shrinks the quick sweep to the smallest grid that still
// exercises the full observability plane: a decision-sink policy and one
// without, with ledgers and a registry attached.
func obsFleetConfig(seed int64) (Config, FleetOptions) {
	cfg, opt := quickFleetConfig(seed)
	opt.Loads = []float64{0.6}
	opt.Dispatchers = []string{"power-of-two"}
	opt.Policies = []string{"retail", "eetl"}
	opt.RequestsPerCell = 1500
	return cfg, opt
}

// TestMetricsScrapeDuringFleetSweep hammers /metrics and /debug/fleet
// over HTTP while a ledger-attached sweep is writing into the same
// registry. Run under -race this is the concurrency contract for the
// whole scrape path: Registry.WriteText, Gather and the roll-up must
// tolerate cells registering and updating instruments mid-scrape.
func TestMetricsScrapeDuringFleetSweep(t *testing.T) {
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/debug/fleet", obs.FleetHandler(reg))
	mux.Handle("/", reg.Handler())
	ms, err := telemetry.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	stop, done := make(chan struct{}), make(chan struct{})
	var scrapes, fleetScrapes atomic.Int64
	scrape := func(path string, n *atomic.Int64) {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			return // transient dial failure; the count check catches droughts
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err == nil && resp.StatusCode == http.StatusOK {
			n.Add(1)
		}
	}
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrape("/metrics", &scrapes)
			scrape("/debug/fleet", &fleetScrapes)
		}
	}()

	cfg, opt := obsFleetConfig(42)
	opt.Ledger = true
	opt.Registry = reg
	res, err := FleetSweep(cfg, opt)
	// A warm-calibration sweep can finish before the first HTTP round
	// trip lands; keep scraping until both endpoints answered at least
	// once so the assertions below never race the scraper's startup.
	deadline := time.Now().Add(10 * time.Second)
	for (scrapes.Load() == 0 || fleetScrapes.Load() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if scrapes.Load() == 0 || fleetScrapes.Load() == 0 {
		t.Fatalf("scrape loop starved: %d /metrics, %d /debug/fleet", scrapes.Load(), fleetScrapes.Load())
	}

	// The post-sweep roll-up must cover at least the sweep's measured
	// completions (telemetry counts the whole run, warmup included, while
	// FleetResult counts only the measurement window).
	rollup := obs.RollupRegistry(reg)
	if len(rollup) != 1 {
		t.Fatalf("rollup has %d apps, want 1: %+v", len(rollup), rollup)
	}
	completed := 0
	for _, c := range res.Cells {
		completed += c.Result.Completed
	}
	if int(rollup[0].Completed) < completed {
		t.Fatalf("rollup completed %d < sweep's measured %d", rollup[0].Completed, completed)
	}

	// And a final scrape must carry both the request schema and the
	// per-cell labels the sweep attached.
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{telemetry.MetricRequestsTotal, `dispatcher="power-of-two"`, `policy="eetl"`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("final scrape is missing %q", want)
		}
	}
}

// TestFleetReportGolden pins the canonical (provenance-masked) report
// bytes at a fixed seed against the committed golden — the cross-PR diff
// contract for the whole attribution pipeline: ledger cells, winners,
// roll-up, hex placement hashes. Refresh with -update.
func TestFleetReportGolden(t *testing.T) {
	run := func() (*obs.Report, []byte) {
		cfg, opt := obsFleetConfig(42)
		reg := telemetry.NewRegistry()
		opt.Ledger = true
		opt.Registry = reg
		res, err := FleetSweep(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report(42, obs.RollupRegistry(reg))
		b, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep, b
	}
	rep, got := run()
	if _, again := run(); !bytes.Equal(got, again) {
		t.Fatal("report is not byte-stable across reruns at the same seed")
	}

	// Semantic invariants before the byte comparison: every violation
	// carries a cause and every joule lands in a ledger cell.
	for _, c := range rep.Fleet.Cells {
		var causes, ledgerE = uint64(0), 0.0
		for _, ns := range c.Ledger {
			causes += ns.Violations()
			ledgerE += ns.EnergyJ()
		}
		if causes != uint64(c.Violations) {
			t.Errorf("%s/%s: %d violations but %d cause-attributed", c.Dispatcher, c.Policy, c.Violations, causes)
		}
		if diff := ledgerE - c.EnergyJ; diff > 1e-9*c.EnergyJ || diff < -1e-9*c.EnergyJ {
			t.Errorf("%s/%s: ledger energy %v J vs cell %v J", c.Dispatcher, c.Policy, ledgerE, c.EnergyJ)
		}
	}
	var parsed obs.Report
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("canonical report does not parse: %v", err)
	}
	if parsed.Version != obs.ReportVersion || parsed.Kind != "fleet-sweep" {
		t.Fatalf("bad envelope: version=%d kind=%q", parsed.Version, parsed.Kind)
	}

	golden := filepath.Join("testdata", "report_golden.json")
	if *updateChaosGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical report diverges from golden (%d vs %d bytes) — run with -update after intentional changes%s",
			len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff renders the first byte divergence between two JSON blobs as
// a short context window, for actionable golden failures.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("\nfirst divergence at byte %d:\n got: %q\nwant: %q",
				i, got[lo:min(i+40, len(got))], want[lo:min(i+40, len(want))])
		}
	}
	return ""
}
