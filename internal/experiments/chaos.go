package experiments

import (
	"fmt"
	"sort"
	"strings"

	"retail/internal/core"
	"retail/internal/fault"
	"retail/internal/manager"
	"retail/internal/sim"
	"retail/internal/stats"
	"retail/internal/trace"
	"retail/internal/workload"
)

// ---------------------------------------------------------------------------
// Chaos — named fault plans replayed in the simulator against ReTail and
// the baselines, with a deterministic degradation report.
//
// The simulator hosts the *model-level* fault sites: predictor-output
// corruption (SitePredict), workload drift steps (plan Drift → the
// server's interference hook) and overload bursts (plan Burst → the
// generator's arrival rate). The wall-clock sites — DVFS write failures
// and executor stalls — live in internal/live and are exercised by
// experiments.RunLiveChaos and the retail-chaos command; see DESIGN.md §9
// for the site ↔ runtime matrix.
//
// Every number in the report is deterministic for a fixed Config.Seed, so
// `make chaos-check` pins the rendered output against a golden file.

// chaosSimPlans are the built-in plans with simulator-side content.
func chaosSimPlans() []string {
	return []string{"drift-step", "overload-burst", "predictor-skew"}
}

// ChaosCell is one (plan × manager) pairing: the same load replayed with
// and without the fault plan.
type ChaosCell struct {
	Plan    string
	Manager string

	QoSTarget float64
	BaseTail  float64 // tail at the QoS percentile, healthy run
	FaultTail float64 // same, under the fault plan
	BaseQoS   bool
	FaultQoS  bool

	BaseEnergyJ    float64
	FaultEnergyJ   float64
	EnergyDeltaPct float64 // (fault − base) / base

	Completed int
	Dropped   int // Gemini's predicted-miss drops under the plan
	Retrains  int // ReTail's drift-triggered refits under the plan

	// Injected counts per fired site, in Site order (index = fault.Site).
	Injected [fault.NumSites]uint64
}

// ChaosResult is the full simulator chaos matrix plus the trace audit of
// ReTail's faulted runs (violation attribution: queueing vs mispredict vs
// decision delay — under predictor-skew the mass moves to mispredict
// until the retrain lands).
type ChaosResult struct {
	App string
	RPS float64
	// Spec names the cohort spec driving arrivals when the matrix ran
	// under ChaosAllBursty ("" = the classic Poisson generator).
	Spec  string
	Cells []ChaosCell
	// Audits maps plan name → rendered trace.Audit for ReTail's faulted
	// run under that plan.
	Audits map[string]string
}

// chaosManagers returns the evaluated managers in report order.
func chaosManagers() []string { return []string{"retail", "rubik", "gemini"} }

// ChaosAll replays every simulator-side plan against ReTail, Rubik and
// Gemini on Moses at 40% load over the canonical 10-second timeline
// (2 s warmup + 10 s measured, matching the plan windows).
func ChaosAll(cfg Config) (*ChaosResult, error) {
	return chaosAll(cfg, nil)
}

// ChaosAllBursty is the nightly bursty-arrival leg: the same plan ×
// manager matrix, but arrivals come from the overload-mmpp cohort spec —
// nearly all load on a heavily bursty MMPP population — instead of the
// i.i.d. Poisson generator. Overload windows then arrive as correlated
// trains, the arrival shape the PR 4 degradation ladder (retrain, shed,
// clamp — never crash) must survive.
func ChaosAllBursty(cfg Config) (*ChaosResult, error) {
	spec := workload.BuiltinSpec("overload-mmpp")
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: overload-mmpp spec: %w", err)
	}
	return chaosAll(cfg, spec)
}

func chaosAll(cfg Config, spec *workload.Spec) (*ChaosResult, error) {
	app := workload.ByName("moses")
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rps := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed) * 0.4
	res := &ChaosResult{App: app.Name(), RPS: rps, Audits: map[string]string{}}
	if spec != nil {
		res.Spec = spec.Name
		spec = spec.ScaledTo(rps)
	}

	// One healthy baseline per manager, shared across plans.
	base := map[string]*chaosRun{}
	for _, mgr := range chaosManagers() {
		r, err := chaosRunOnce(cfg, cal, mgr, rps, spec, nil)
		if err != nil {
			return nil, fmt.Errorf("chaos: baseline %s: %w", mgr, err)
		}
		base[mgr] = r
	}
	for _, planName := range chaosSimPlans() {
		plan, err := fault.PlanByName(planName)
		if err != nil {
			return nil, err
		}
		for _, mgr := range chaosManagers() {
			fr, err := chaosRunOnce(cfg, cal, mgr, rps, spec, plan)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s/%s: %w", planName, mgr, err)
			}
			b := base[mgr]
			cell := ChaosCell{
				Plan: planName, Manager: mgr,
				QoSTarget: float64(app.QoS().Latency),
				BaseTail:  b.tail, FaultTail: fr.tail,
				BaseQoS: b.qosMet, FaultQoS: fr.qosMet,
				BaseEnergyJ: b.energyJ, FaultEnergyJ: fr.energyJ,
				Completed: fr.completed, Dropped: fr.dropped,
				Retrains: fr.retrains, Injected: fr.injected,
			}
			if b.energyJ > 0 {
				cell.EnergyDeltaPct = (fr.energyJ - b.energyJ) / b.energyJ
			}
			res.Cells = append(res.Cells, cell)
			if mgr == "retail" && fr.audit != "" {
				res.Audits[planName] = fr.audit
			}
		}
	}
	return res, nil
}

// chaosRun is one simulated replay's raw measurements.
type chaosRun struct {
	tail      float64
	qosMet    bool
	energyJ   float64
	completed int
	dropped   int
	retrains  int
	injected  [fault.NumSites]uint64
	audit     string
}

// chaosRunOnce replays one plan (nil = healthy baseline) against one
// manager. The plan's clock is the simulator clock, so the canonical
// 10-second timeline maps 1:1 onto virtual time: warmup ends at t=2 s and
// the measured window closes at t=12 s. A non-nil spec (already scaled to
// rps) swaps the Poisson generator for the cohort population; plan
// overload windows then scale every client's instantaneous rate instead
// of resetting a single Poisson rate.
func chaosRunOnce(cfg Config, cal *core.Calibration, mgrName string, rps float64, spec *workload.Spec, plan *fault.Plan) (*chaosRun, error) {
	const (
		warmup  = sim.Time(2)
		horizon = sim.Time(12)
	)
	app := cal.App
	e := sim.NewEngine()
	inj := fault.New(cfg.Seed, plan).WithClock(func() float64 { return float64(e.Now()) })

	var mgr manager.Manager
	var rt *manager.ReTail
	switch mgrName {
	case "retail":
		if plan != nil {
			// Interpose predictor corruption between calibration and the
			// decision loop. A retrain refits a clean linear model and
			// discards the wrapper — exactly the documented recovery.
			rt = cal.NewReTailWith(fault.CorruptingPredictor{Inner: cal.Model, Inj: inj})
		} else {
			rt = cal.NewReTailParams(cfg.Params)
		}
		mgr = rt
	case "rubik":
		mgr = cal.NewRubikParams(cfg.Params)
	case "gemini":
		g, err := cal.NewGeminiParams(cfg.GeminiNN, cfg.Params)
		if err != nil {
			return nil, err
		}
		mgr = g
	default:
		return nil, fmt.Errorf("chaos: unknown manager %q", mgrName)
	}

	srv := serverFor(cfg.Platform, app, cfg.Seed)
	mgr.Attach(e, srv)
	var flight *trace.FlightRecorder
	if rt != nil && plan != nil {
		flight = trace.NewFlightRecorder(trace.FlightRecorderConfig{QoS: app.QoS()})
		flight.Attach(srv)
		rt.SetDecisionSink(flight)
	}

	lat := stats.NewLatencyTracker(0, true)
	measuring := false
	dropped := 0
	srv.CompletedSink = func(en *sim.Engine, r *workload.Request) {
		if measuring {
			lat.Add(float64(r.Sojourn()))
		}
	}
	srv.DroppedSink = func(en *sim.Engine, r *workload.Request) {
		if measuring {
			dropped++
		}
	}

	var stopGen func()
	var setBurst func(factor float64)
	if spec != nil {
		gen := workload.NewCohortGenerator(spec, cfg.Seed+5, srv.Submit)
		gen.Start(e)
		stopGen = gen.Stop
		setBurst = gen.SetRateScale
	} else {
		gen := workload.NewGenerator(app, rps, cfg.Seed+5, srv.Submit)
		gen.Start(e)
		stopGen = gen.Stop
		setBurst = func(factor float64) { gen.SetRPS(rps * factor) }
	}
	if plan != nil {
		if b := plan.Burst; b != nil && b.Factor > 0 {
			factor := b.Factor
			e.At(sim.Time(b.From), "chaos.burst", func(en *sim.Engine) { setBurst(factor) })
			e.At(sim.Time(b.Until), "chaos.burst-end", func(en *sim.Engine) { setBurst(1) })
		}
		if d := plan.Drift; d != nil && d.Factor > 0 {
			factor := d.Factor
			e.At(sim.Time(d.At), "chaos.drift", func(en *sim.Engine) {
				srv.SetInterference(en, factor)
				inj.Record(fault.SiteDrift, 1)
			})
			if d.RecoverAt > 0 {
				e.At(sim.Time(d.RecoverAt), "chaos.drift-recover", func(en *sim.Engine) {
					srv.SetInterference(en, 1)
				})
			}
		}
	}
	e.At(warmup, "chaos.measure", func(en *sim.Engine) {
		measuring = true
		srv.Socket.ResetEnergy(en.Now())
	})
	e.Run(horizon)
	stopGen()

	qos := app.QoS()
	run := &chaosRun{
		energyJ:   srv.Socket.EnergyJoules(horizon),
		completed: lat.Count(),
		dropped:   dropped,
	}
	if lat.Count() > 0 {
		run.tail = lat.Quantiles(qos.Percentile / 100)[0]
		run.qosMet = run.tail <= float64(qos.Latency)
	}
	if rt != nil {
		run.retrains = rt.Retrains()
	}
	for s := fault.Site(0); s < fault.NumSites; s++ {
		run.injected[s] = inj.Fired(s)
	}
	if flight != nil {
		run.audit = flight.Audit().Render()
	}
	return run, nil
}

// renderInjected lists nonzero per-site fire counts in site order.
func renderInjected(inj [fault.NumSites]uint64) string {
	var parts []string
	for s := fault.Site(0); s < fault.NumSites; s++ {
		if inj[s] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", s, inj[s]))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// Render prints the degradation matrix and the ReTail audits, in a
// deterministic order suitable for golden-file comparison.
func (r *ChaosResult) Render() string {
	t := &table{header: []string{
		"plan", "manager", "base tail", "fault tail", "QoS", "kept", "Δenergy", "drops", "retrains", "injected",
	}}
	for _, c := range r.Cells {
		kept := "LOST"
		if c.FaultQoS {
			kept = "kept"
		}
		t.add(c.Plan, c.Manager,
			dur(c.BaseTail), dur(c.FaultTail), dur(c.QoSTarget), kept,
			pct(c.EnergyDeltaPct), fmt.Sprintf("%d", c.Dropped),
			fmt.Sprintf("%d", c.Retrains), renderInjected(c.Injected))
	}
	var b strings.Builder
	arrivals := ""
	if r.Spec != "" {
		arrivals = fmt.Sprintf(", %s arrivals", r.Spec)
	}
	fmt.Fprintf(&b, "Chaos — %s @ %.1f RPS, canonical 10s timeline (2s warmup)%s\n%s",
		r.App, r.RPS, arrivals, t.String())
	plans := make([]string, 0, len(r.Audits))
	for p := range r.Audits {
		plans = append(plans, p)
	}
	sort.Strings(plans)
	for _, p := range plans {
		fmt.Fprintf(&b, "\nretail under %s:\n%s", p, r.Audits[p])
	}
	return b.String()
}
