package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// checkCSV validates well-formedness: parseable, consistent column
// counts, a header row, and at least one data row.
func checkCSV(t *testing.T, name string, e CSVExportable) {
	t.Helper()
	var buf bytes.Buffer
	if err := e.CSV(&buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rd := csv.NewReader(strings.NewReader(buf.String()))
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if len(rows) < 2 {
		t.Fatalf("%s: only %d rows", name, len(rows))
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			t.Fatalf("%s: row %d has %d columns, header has %d", name, i, len(r), width)
		}
	}
}

func TestCSVExports(t *testing.T) {
	cfg := quickCfg()
	if r, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig2", r)
	}
	if r, err := Fig3(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig3", r)
	}
	if r, err := Fig4(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig4", r)
	}
	if r, err := Fig5(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig5", r)
	}
	if r, err := Fig9(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig9", r)
	}
}

func TestCSVExportsSlow(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed exports are slow")
	}
	cfg := quickCfg()
	cfg.Loads = []float64{0.5}
	if r, err := Fig1(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig1", r)
	}
	if r, err := Fig11(cfg, []string{"imgdnn"}); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig11", r)
	}
	if r, err := LoadSpike(cfg, "imgdnn"); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "spike", r)
	}
	if r, err := Fig14(cfg); err != nil {
		t.Fatal(err)
	} else {
		checkCSV(t, "fig14", r)
	}
}
