package experiments

import (
	"fmt"

	"retail/internal/core"
	"retail/internal/cpu"
	"retail/internal/sim"
	"retail/internal/workload"
)

// OverheadResult reproduces the §VII-F overhead accounting: frequency-
// predictor decision cost (inferences per decision × per-inference cost)
// and the frequency-transition latency distribution.
type OverheadResult struct {
	App string

	Decisions           int
	Inferences          uint64
	InferencesPerDecide float64
	// DecisionCost is the virtual time per decision implied by the 5 µs
	// per-inference cost (paper: 5–100 µs, average ≈ 25 µs).
	MeanDecisionCost sim.Duration
	Transitions      int
	// Transition latency statistics from the configured hardware model
	// (paper: 10–500 µs, average ≈ 25 µs).
	TransMin, TransMean, TransMax sim.Duration
}

// Overhead runs ReTail at mid load and reports the decision/transition
// overhead statistics.
func Overhead(cfg Config, appName string) (*OverheadResult, error) {
	app := workload.ByName(appName)
	if app == nil {
		return nil, fmt.Errorf("experiments: unknown app %q", appName)
	}
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rps := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed) * 0.6
	rt := cal.NewReTail()
	dur := cfg.runDuration(app, rps)
	r, err := core.Run(core.RunConfig{App: app, Platform: cfg.Platform, Manager: rt,
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{
		App:         app.Name(),
		Decisions:   rt.Decisions(),
		Inferences:  rt.Inferences(),
		Transitions: r.Transitions,
	}
	if res.Decisions > 0 {
		res.InferencesPerDecide = float64(res.Inferences) / float64(res.Decisions)
		res.MeanDecisionCost = sim.Duration(res.InferencesPerDecide) * 5 * sim.Microsecond
	}
	tm := cpu.DefaultTransitionModel()
	res.TransMin, res.TransMean, res.TransMax = tm.Min, tm.Mean, tm.Max
	return res, nil
}

// Render prints the §VII-F rows.
func (r *OverheadResult) Render() string {
	return fmt.Sprintf(`§VII-F — ReTail overhead for %s
  frequency-predictor decisions     %d
  predictor inferences              %d (%.1f per decision)
  mean decision cost                %v (5µs per inference)
  frequency transitions applied     %d
  transition latency model          min %v / mean %v / max %v
`,
		r.App, r.Decisions, r.Inferences, r.InferencesPerDecide,
		r.MeanDecisionCost, r.Transitions, r.TransMin, r.TransMean, r.TransMax)
}
