// Package experiments regenerates every table and figure in the paper's
// characterization (§III) and evaluation (§V, §VII) sections. Each
// experiment is a function returning a structured result with a Render
// method that prints the same rows/series the paper reports; cmd/retail-bench
// and the repository's benchmark harness drive them.
//
// Absolute numbers differ from the paper — the substrate is a calibrated
// simulator, not a Xeon Gold 6152 — but the shapes the paper argues from
// (who wins, by what rough factor, where the crossovers are) are asserted
// by the test suite in this package.
package experiments

import (
	"fmt"
	"strings"

	"retail/internal/core"
	"retail/internal/nn"
	"retail/internal/policy"
	"retail/internal/sim"
	"retail/internal/workload"
)

// Config controls experiment scale. Quick keeps runs short enough for CI;
// the full configuration reproduces the paper's sweep resolution.
type Config struct {
	Platform core.Platform
	// SamplesPerLevel is the calibration size (paper: 1000).
	SamplesPerLevel int
	// Loads are the load points as fractions of max load (paper: 0.1–1.0
	// in 0.1 steps).
	Loads []float64
	// Seed drives all randomness.
	Seed int64
	// MaxDuration caps each measured run (0 = RecommendedDuration's own cap).
	MaxDuration sim.Duration
	// Parallel is the sweep worker count: how many independent simulation
	// cells (app × load × manager combinations) run concurrently. 0 (the
	// default) selects runtime.GOMAXPROCS(0); 1 forces the historical
	// sequential loops. Results are merged in canonical cell order, so the
	// value changes wall-clock time only — rendered tables and CSV exports
	// are byte-identical at every setting.
	Parallel int
	// GeminiNN overrides Gemini's network structure (nil = the published
	// 5×128, which is slow to train in a test setting).
	GeminiNN *nn.Config
	// Trace attaches a span flight recorder (decision-attributed request
	// tracing) to the trace-capable scenarios — the load spike and the
	// Fig 14 drift timeline. The recorder is a pure observer, so traced
	// results are identical to untraced ones; the result structs then carry
	// the recorder for Chrome-trace/CSV export.
	Trace bool
	// Params is the serializable policy parameterization under which the
	// sweeps construct their managers (core.Calibration.New*Params). The
	// zero value keeps every historical constant, so all golden-pinned
	// tables are byte-identical without a params file.
	Params policy.Params
}

// Default returns the paper-resolution configuration.
func Default() Config {
	loads := make([]float64, 10)
	for i := range loads {
		loads[i] = 0.1 * float64(i+1)
	}
	return Config{
		Platform:        core.DefaultPlatform(),
		SamplesPerLevel: 1000,
		Loads:           loads,
		Seed:            42,
	}
}

// Quick returns a reduced configuration for tests and smoke benchmarks.
func Quick() Config {
	cfg := Default()
	cfg.Platform = cfg.Platform.WithWorkers(8)
	cfg.SamplesPerLevel = 400
	cfg.Loads = []float64{0.3, 0.6, 0.9}
	cfg.MaxDuration = 12
	small := nn.TunedConfig(1, 2, 32, 30, 32)
	cfg.GeminiNN = &small
	return cfg
}

// runDuration picks the measured window for one run.
func (c Config) runDuration(app workload.App, rps float64) sim.Duration {
	d := core.RecommendedDuration(app, rps)
	if c.MaxDuration > 0 && d > c.MaxDuration {
		d = c.MaxDuration
	}
	return d
}

// table renders rows of columns with aligned widths.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func dur(v float64) string { return sim.Time(v).String() }

// AppNames lists the seven applications in the paper's order.
func AppNames() []string {
	names := make([]string, 0, 7)
	for _, a := range workload.All() {
		names = append(names, a.Name())
	}
	return names
}
