// Workload sweep: the determinism and parity gate for the cohort-spec
// generation subsystem (internal/workload).
//
// Every cell runs one builtin cohort spec through the simulator with a
// trace recorder tapped in, then proves three things about the recording:
//
//  1. the trace's canonical SHA-256 is a pure function of (spec, seed,
//     horizon) — the rendered table pins it against the committed golden;
//  2. record → replay → re-record round-trips byte-identically through
//     the simulator (the replayed stream regenerates the same bytes);
//  3. the recorded decision inputs replay through the live runtime's
//     decider to a byte-identical per-SLO-class decision stream
//     (EncodeClassedDecisions: level + scaled QoS′ bits + class byte).
//
// A cell fails loudly when any of the three breaks, so `make
// workload-check` is a single gate for generation determinism, trace
// round-tripping and multi-class decision parity.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"retail/internal/core"
	"retail/internal/live"
	"retail/internal/manager"
	"retail/internal/policy"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/workload"
)

// WorkloadOptions sizes the cohort-spec sweep.
type WorkloadOptions struct {
	// Specs are builtin spec names (nil = every builtin except the chaos
	// overload spec, which deliberately drowns the server).
	Specs []string
	// Workers is the simulated pool size (default 8).
	Workers int
	// Load is the fraction of the app's calibrated max the spec's
	// aggregate rate is scaled to (default 0.7).
	Load float64
	// RequestsPerCell targets this many offered requests per cell; the
	// measured duration is RequestsPerCell/RPS (default 3000).
	RequestsPerCell int
}

func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if o.Specs == nil {
		for _, name := range workload.BuiltinSpecNames() {
			if name != "overload-mmpp" {
				o.Specs = append(o.Specs, name)
			}
		}
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Load <= 0 {
		o.Load = 0.7
	}
	if o.RequestsPerCell <= 0 {
		o.RequestsPerCell = 3000
	}
	return o
}

// WorkloadCell is one spec's outcome: the measured run plus the three
// determinism artifacts the sweep pins.
type WorkloadCell struct {
	Spec    string
	SpecSHA string // spec identity (workload.Spec.SHA)
	Clients int
	Result  *core.Result

	TraceSHA  string // canonical SHA-256 of the recorded trace
	Records   int
	RoundTrip bool // record→replay→re-record byte identity held

	Decisions   int
	DecisionSHA string // SHA-256 of the classed sim decision stream
	ParityOK    bool   // live decider replayed to identical bytes
}

// WorkloadSweepResult holds the per-spec grid.
type WorkloadSweepResult struct {
	App     string
	QoS     workload.QoS
	Workers int
	Load    float64
	MaxRPS  float64
	Cells   []WorkloadCell
}

// WorkloadSweep runs every requested spec as an independent cell through
// RunSweep under cfg.Parallel; cells share only the read-only
// calibration, and results merge in spec order, so the rendered table is
// byte-identical at every parallelism setting.
func WorkloadSweep(cfg Config, opt WorkloadOptions) (*WorkloadSweepResult, error) {
	opt = opt.withDefaults()
	// Every builtin spec targets one app; resolve it from the first spec
	// and insist the rest agree (one calibration serves the whole sweep).
	var app workload.App
	specs := make([]*workload.Spec, 0, len(opt.Specs))
	for _, name := range opt.Specs {
		spec, err := workload.LoadSpec(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		sa, err := spec.SingleApp()
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if app == nil {
			app = sa
		} else if sa.Name() != app.Name() {
			return nil, fmt.Errorf("experiments: workload sweep mixes apps %q and %q", app.Name(), sa.Name())
		}
		specs = append(specs, spec)
	}
	for _, s := range app.FeatureSpecs() {
		if s.Lateness > 0 {
			return nil, fmt.Errorf("experiments: app %q has late feature %q; the static-feature trace needs a zero-lateness app", app.Name(), s.Name)
		}
	}
	platform := cfg.Platform.WithWorkers(opt.Workers)
	cal, err := core.Calibrate(app, platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxRPS := core.CalibrateMaxLoad(app, platform, cfg.Seed)
	rps := opt.Load * maxRPS
	dur := sim.Duration(float64(opt.RequestsPerCell) / rps)
	if dur < 2 {
		dur = 2
	}

	res := &WorkloadSweepResult{
		App: app.Name(), QoS: app.QoS(),
		Workers: opt.Workers, Load: opt.Load, MaxRPS: maxRPS,
	}
	cells := make([]SweepCell[*WorkloadCell], 0, len(specs))
	for _, spec := range specs {
		spec := spec
		cells = append(cells, SweepCell[*WorkloadCell]{
			Label: fmt.Sprintf("workload/%s/%s", app.Name(), spec.Name),
			Run: func() (*WorkloadCell, error) {
				return runWorkloadCell(cfg, cal, platform, spec, rps, dur)
			},
		})
	}
	runs, err := RunSweep(cfg.Parallel, cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for _, c := range runs {
		res.Cells = append(res.Cells, *c)
	}
	return res, nil
}

// frozenReTail builds a ReTail manager with retraining disabled, so the
// model the live decider replays against is bit-identical to the one the
// recording run consulted (same freeze RunParity applies).
func frozenReTail(cal *core.Calibration, app workload.App) *manager.ReTail {
	mcfg := manager.DefaultReTailConfig()
	mcfg.Layout = cal.Layout
	mcfg.Model = cal.Model
	mcfg.Training = nil
	return manager.NewReTail(app.QoS(), mcfg)
}

func runWorkloadCell(cfg Config, cal *core.Calibration, platform core.Platform, spec *workload.Spec, rps float64, dur sim.Duration) (*WorkloadCell, error) {
	app := cal.App
	scaled := spec.ScaledTo(rps)
	_, scales := scaled.Classes()
	mcfg := manager.DefaultReTailConfig()

	// Recording run: the v2 trace taps the generator→server path while
	// the policy trace records everything the decision core consumed.
	m1 := frozenReTail(cal, app)
	log := &decisionLog{}
	m1.SetDecisionSink(log)
	ptr := &policy.Trace{
		Features: map[uint64][]float64{},
		Gens:     map[uint64]policy.Time{},
		Classes:  map[uint64]uint8{},
	}
	trace := workload.NewTrace(scaled, cfg.Seed)
	run := core.RunConfig{
		App: app, Platform: platform, Manager: m1,
		Spec: scaled, Record: trace,
		Warmup: dur / 5, Duration: dur, Seed: cfg.Seed,
		Instrument: func(e *sim.Engine, srv *server.Server) {
			rec := &traceRecorder{inner: srv.Hooks, specs: app.FeatureSpecs(), tr: ptr}
			srv.Hooks = rec
			policy.RunMonitor(parityTimer{e}, float64(mcfg.MonitorInterval), "parity.tick",
				func(now policy.Time) {
					rec.tr.Events = append(rec.tr.Events, policy.TraceEvent{Kind: policy.TickEvent, At: now})
				})
		},
	}
	result, err := core.Run(run)
	if err != nil {
		return nil, fmt.Errorf("workload %s: record run: %w", spec.Name, err)
	}
	traceBytes, err := trace.CanonicalBytes()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	traceSum := sha256.Sum256(traceBytes)

	// Round trip: replay the trace through a fresh simulated run with a
	// second recorder tapped in; the re-recording must be byte-identical.
	reRec := workload.NewTrace(scaled, cfg.Seed)
	if _, err := core.Run(core.RunConfig{
		App: app, Platform: platform, Manager: frozenReTail(cal, app),
		Replay: trace, Record: reRec,
		Warmup: dur / 5, Duration: dur, Seed: cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("workload %s: replay run: %w", spec.Name, err)
	}
	reBytes, err := reRec.CanonicalBytes()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	roundTrip := string(traceBytes) == string(reBytes)
	if !roundTrip {
		return nil, fmt.Errorf("workload %s: record→replay→re-record diverged (%d vs %d bytes)",
			spec.Name, len(traceBytes), len(reBytes))
	}

	// Live-decider parity: replay the recorded decision inputs through
	// the live runtime's retailDecider with the spec's class targets and
	// demand a byte-identical classed decision stream.
	simStream := EncodeClassedDecisions(log.out)
	replayed := live.ReplayDecisionsClassed(ptr, cal.Model, platform.Grid,
		m1.MonitorSettings(), policy.NewClassTargets(scales))
	liveStream := EncodeClassedDecisions(replayed)
	parityOK := string(simStream) == string(liveStream)
	if !parityOK {
		return nil, fmt.Errorf("workload %s: live decider diverged from simulator (%d vs %d decisions)",
			spec.Name, len(log.out), len(replayed))
	}
	decSum := sha256.Sum256(simStream)

	clients := 0
	for _, c := range scaled.Cohorts {
		clients += c.Clients
	}
	return &WorkloadCell{
		Spec:    spec.Name,
		SpecSHA: spec.SHA(),
		Clients: clients,
		Result:  result,

		TraceSHA:  hex.EncodeToString(traceSum[:]),
		Records:   len(trace.Records),
		RoundTrip: roundTrip,

		Decisions:   len(log.out),
		DecisionSHA: hex.EncodeToString(decSum[:]),
		ParityOK:    parityOK,
	}, nil
}

// Render prints the grid, the per-SLO-class breakdown, and the full
// trace/decision hashes — the bytes `make workload-check` pins.
func (r *WorkloadSweepResult) Render() string {
	t := &table{header: []string{"spec", "clients", "rps", "completed",
		"dropped", "p50", "p99", "tail@QoS", "QoS", "records", "roundtrip",
		"decisions", "parity"}}
	for _, c := range r.Cells {
		res := c.Result
		met := "miss"
		if res.QoSMet {
			met = "met"
		}
		t.add(c.Spec, strconv.Itoa(c.Clients), f2(res.RPS),
			strconv.Itoa(res.Completed), strconv.Itoa(res.Dropped),
			dur(res.P50), dur(res.P99), dur(res.TailAtQoSPct), met,
			strconv.Itoa(c.Records), okOrFail(c.RoundTrip),
			strconv.Itoa(c.Decisions), okOrFail(c.ParityOK))
	}
	cl := &table{header: []string{"spec", "class", "scale", "completed",
		"dropped", "p50", "p99", "tail@QoS", "target", "QoS"}}
	for _, c := range r.Cells {
		for _, cr := range c.Result.Classes {
			met := "miss"
			if cr.QoSMet {
				met = "met"
			}
			cl.add(c.Spec, cr.Class, f2(cr.QoSScale),
				strconv.Itoa(cr.Completed), strconv.Itoa(cr.Dropped),
				dur(cr.P50), dur(cr.P99), dur(cr.TailAtQoSPct),
				dur(cr.QoSTarget), met)
		}
	}
	hashes := ""
	for _, c := range r.Cells {
		hashes += fmt.Sprintf("trace-sha256    %-16s %s\n", c.Spec, c.TraceSHA)
	}
	for _, c := range r.Cells {
		hashes += fmt.Sprintf("decision-sha256 %-16s %s\n", c.Spec, c.DecisionSHA)
	}
	return fmt.Sprintf(
		"Workload sweep: %s cohort specs at %.2f×max on %d workers (QoS p%.0f ≤ %v, max %.0f RPS)\n\n%s\nPer-SLO-class latency:\n\n%s\nCanonical hashes (provenance masked):\n\n%s",
		r.App, r.Load, r.Workers, r.QoS.Percentile, r.QoS.Latency,
		r.MaxRPS, t, cl, hashes)
}

func okOrFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
