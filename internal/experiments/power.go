package experiments

import (
	"fmt"

	"retail/internal/core"
	"retail/internal/manager"
	"retail/internal/predict"
	"retail/internal/workload"
)

// ManagerNames lists the three power managers of the paper's headline
// comparison (Fig 11, Table V).
var ManagerNames = []string{"rubik", "gemini", "retail"}

// Fig11Point is one (load, manager) cell of Fig 11.
type Fig11Point struct {
	Load     float64 // fraction of max load
	RPS      float64
	PowerW   map[string]float64 // Fig 11a
	DropRate map[string]float64 // Fig 11b (gemini only in practice)
	Tail     map[string]float64 // Fig 11c, at the QoS percentile
	MeanLat  map[string]float64
	QoSMet   map[string]bool
	MaxFreqW float64 // the unmanaged reference
}

// Fig11App is one application's sweep.
type Fig11App struct {
	App     string
	QoS     workload.QoS
	MaxLoad float64
	Points  []Fig11Point
	// RMSE is Table V: live prediction RMSE per manager, measured on the
	// highest-load run's completed requests.
	RMSE map[string]float64
	// Savings vs the two baselines, averaged over the sweep (the paper's
	// headline numbers aggregate these across apps).
	AvgSavingVsRubik  float64
	AvgSavingVsGemini float64
}

// Fig11Result reproduces Fig 11 (a, b, c) and Table V.
type Fig11Result struct {
	Apps []Fig11App
}

// Fig11 runs the full load sweep for the given applications (nil = all
// seven) under Rubik, Gemini and ReTail.
func Fig11(cfg Config, appNames []string) (*Fig11Result, error) {
	if appNames == nil {
		appNames = AppNames()
	}
	// Two levels of fan-out: one cell per app (whose calibration and
	// Gemini NN training dominate the wall clock), and inside each app a
	// second sweep over (load × manager) runs. Both merge in canonical
	// order, so the result is independent of scheduling.
	cells := make([]SweepCell[*Fig11App], 0, len(appNames))
	for _, name := range appNames {
		app := workload.ByName(name)
		if app == nil {
			return nil, fmt.Errorf("experiments: unknown app %q", name)
		}
		cells = append(cells, SweepCell[*Fig11App]{
			Label: "fig11/" + name,
			Run:   func() (*Fig11App, error) { return fig11App(cfg, app) },
		})
	}
	fas, err := RunSweep(cfg.Parallel, cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res := &Fig11Result{}
	for _, fa := range fas {
		res.Apps = append(res.Apps, *fa)
	}
	return res, nil
}

func fig11App(cfg Config, app workload.App) (*Fig11App, error) {
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxLoad := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed)
	fa := &Fig11App{App: app.Name(), QoS: app.QoS(), MaxLoad: maxLoad, RMSE: map[string]float64{}}

	gem, err := cal.NewGemini(cfg.GeminiNN)
	if err != nil {
		return nil, err
	}
	// Fresh manager state per run; Gemini's trained network is reused
	// (training it is the expensive part and it is immutable). The
	// constructors only read the shared calibration, so cells can call
	// them concurrently.
	newManager := func(name string) manager.Manager {
		switch name {
		case "rubik":
			return cal.NewRubikParams(cfg.Params)
		case "gemini":
			return manager.NewGemini(app.QoS(), app.FeatureSpecs(),
				core.ApplyGeminiParams(gem.Config(), cfg.Params))
		case "retail":
			return cal.NewReTailParams(cfg.Params)
		default:
			return manager.NewMaxFreq()
		}
	}

	// Canonical cell order: load-major, manager-minor. Every cell is an
	// independent simulation sharing only the read-only calibration.
	cellManagers := append([]string{"maxfreq"}, ManagerNames...)
	var cells []SweepCell[*core.Result]
	for _, lf := range cfg.Loads {
		lf := lf
		rps := maxLoad * lf
		dur := cfg.runDuration(app, rps)
		lastLoad := lf == cfg.Loads[len(cfg.Loads)-1]
		for _, mname := range cellManagers {
			mname := mname
			cells = append(cells, SweepCell[*core.Result]{
				Label: fmt.Sprintf("%s/load=%.2f/%s", app.Name(), lf, mname),
				Run: func() (*core.Result, error) {
					return core.Run(core.RunConfig{App: app, Platform: cfg.Platform,
						Manager: newManager(mname), RPS: rps, Warmup: dur / 5, Duration: dur,
						Seed:           cfg.Seed,
						CollectSamples: lastLoad && mname != "maxfreq"})
				},
			})
		}
	}
	runs, err := RunSweep(cfg.Parallel, cells)
	if err != nil {
		return nil, err
	}

	// Merge in the same canonical order the cells were laid out in.
	var sumRubik, sumGemini float64
	idx := 0
	for _, lf := range cfg.Loads {
		pt := Fig11Point{
			Load: lf, RPS: maxLoad * lf,
			PowerW:   map[string]float64{},
			DropRate: map[string]float64{},
			Tail:     map[string]float64{},
			MeanLat:  map[string]float64{},
			QoSMet:   map[string]bool{},
		}
		lastLoad := lf == cfg.Loads[len(cfg.Loads)-1]
		for _, mname := range cellManagers {
			r := runs[idx]
			idx++
			if mname == "maxfreq" {
				pt.MaxFreqW = r.AvgPowerW
				continue
			}
			pt.PowerW[mname] = r.AvgPowerW
			pt.DropRate[mname] = r.DropRate()
			pt.Tail[mname] = r.TailAtQoSPct
			pt.MeanLat[mname] = r.MeanLatency
			pt.QoSMet[mname] = r.QoSMet
			if lastLoad {
				fa.RMSE[mname] = liveRMSE(cal, mname, r.Samples)
			}
		}
		sumRubik += 1 - pt.PowerW["retail"]/pt.PowerW["rubik"]
		sumGemini += 1 - pt.PowerW["retail"]/pt.PowerW["gemini"]
		fa.Points = append(fa.Points, pt)
	}
	n := float64(len(cfg.Loads))
	fa.AvgSavingVsRubik = sumRubik / n
	fa.AvgSavingVsGemini = sumGemini / n
	return fa, nil
}

// liveRMSE scores each manager's predictor against the actually measured
// service times of one run (Table V's methodology). Rubik's "prediction"
// is its tail estimate; Gemini's is its NN restricted to request features;
// ReTail's is the calibrated linear model on full features.
func liveRMSE(cal *core.Calibration, mname string, samples []predict.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	switch mname {
	case "rubik":
		actual := make([]float64, len(samples))
		for i, s := range samples {
			actual[i] = s.Service
		}
		return cal.NewRubik().RMSEAgainstAt(cal.Platform.Grid, samples, actual)
	case "retail":
		met, err := predict.Evaluate(cal.Model, samples)
		if err != nil {
			return 0
		}
		return met.RMSE
	case "gemini":
		model, err := cal.GeminiModel(nil)
		if err != nil {
			return 0
		}
		met, err := predict.Evaluate(model, samples)
		if err != nil {
			return 0
		}
		return met.RMSE
	}
	return 0
}

// Render prints the three Fig 11 panels and the Table V row per app.
func (r *Fig11Result) Render() string {
	out := ""
	for _, a := range r.Apps {
		t := &table{header: []string{"load", "maxfreq W", "rubik W", "gemini W", "retail W",
			"gemini drop", "rubik tail", "gemini tail", "retail tail", "retail QoS"}}
		for _, p := range a.Points {
			met := "OK"
			if !p.QoSMet["retail"] {
				met = "VIOLATED"
			}
			t.add(pct(p.Load), f2(p.MaxFreqW), f2(p.PowerW["rubik"]), f2(p.PowerW["gemini"]),
				f2(p.PowerW["retail"]), pct(p.DropRate["gemini"]),
				dur(p.Tail["rubik"]), dur(p.Tail["gemini"]), dur(p.Tail["retail"]), met)
		}
		out += fmt.Sprintf("Fig 11 — %s (%s, max load %.0f RPS; avg saving vs rubik %s, vs gemini %s)\n%s",
			a.App, a.QoS.String(), a.MaxLoad, pct(a.AvgSavingVsRubik), pct(a.AvgSavingVsGemini), t.String())
		out += fmt.Sprintf("Table V — %s live prediction RMSE: rubik=%s gemini=%s retail=%s\n\n",
			a.App, dur(a.RMSE["rubik"]), dur(a.RMSE["gemini"]), dur(a.RMSE["retail"]))
	}
	return out
}
