package experiments

import (
	"fmt"

	"retail/internal/core"
	"retail/internal/manager"
	"retail/internal/predict"
	"retail/internal/workload"
)

// Ablation quantifies ReTail's individual design choices (the decisions
// DESIGN.md calls out) by disabling them one at a time:
//
//	full          — the paper's complete design
//	no-monitor    — QoS′ pinned to QoS (no latency monitor, §VI-C)
//	head-only     — Algorithm 1 ignores queued requests (§VI-B's inner loop)
//	proportional  — per-frequency models replaced by latency ∝ 1/f scaling
//	no-stage1     — application features unavailable before execution (no
//	                two-stage split, §VI-A); prediction degrades to the
//	                request-feature subset for queued work
//
// Expected shape: every ablation either violates QoS (head-only,
// no-monitor at high load) or burns more power / mispredicts
// (proportional on memory-bound work, no-stage1 on app-feature work).

// AblationCell is one (variant, load) measurement.
type AblationCell struct {
	Variant string
	Load    float64
	PowerW  float64
	Tail    float64
	QoSMet  bool
	Drops   int
}

// AblationResult holds the sweep for one application.
type AblationResult struct {
	App   string
	QoS   workload.QoS
	Cells []AblationCell
}

// AblationVariants lists the variant names in presentation order.
var AblationVariants = []string{"full", "no-monitor", "head-only", "proportional", "no-stage1"}

// Ablation runs the variant sweep on one application.
func Ablation(cfg Config, appName string) (*AblationResult, error) {
	app := workload.ByName(appName)
	if app == nil {
		return nil, fmt.Errorf("experiments: unknown app %q", appName)
	}
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxLoad := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed)
	res := &AblationResult{App: app.Name(), QoS: app.QoS()}

	baseCfg := func() manager.ReTailConfig {
		c := manager.DefaultReTailConfig()
		c.Layout = cal.Layout
		c.Model = cal.Model
		c.Training = cal.Training.Clone()
		c.Stage1Frac = cal.Stage1Frac()
		return c
	}
	variants := map[string]func() manager.Manager{
		"full": func() manager.Manager {
			m := manager.NewReTail(app.QoS(), baseCfg())
			m.SetDriftBaseline(cal.BaselineRMSEOverQoS)
			return m
		},
		"no-monitor": func() manager.Manager {
			c := baseCfg()
			c.Params.Monitor.Disabled = true
			return manager.NewReTail(app.QoS(), c)
		},
		"head-only": func() manager.Manager {
			c := baseCfg()
			c.Params.Alg1.HeadOnly = true
			return manager.NewReTail(app.QoS(), c)
		},
		"proportional": func() manager.Manager {
			c := baseCfg()
			prop, err := predict.NewProportional(cal.Model, cfg.Platform.Grid, cfg.Platform.Grid.MaxLevel())
			if err != nil {
				panic(err) // statically valid inputs
			}
			c.Model = prop
			c.Training = nil // retraining would reintroduce per-level models
			return manager.NewReTail(app.QoS(), c)
		},
		"no-stage1": func() manager.Manager {
			c := baseCfg()
			c.Stage1Frac = func(*workload.Request) float64 { return 0 }
			// Without the split, application features of queued requests
			// are never extracted before execution; ReTail's observability
			// guard then zeroes them at prediction time, so no further
			// change is needed — the Ready callback simply never fires
			// early. Modeled by treating every app feature as unavailable:
			// restrict the layout to request features.
			var reqOnly []int
			for _, j := range cal.Layout.Selected {
				if cal.Layout.Specs[j].RequestFeature() {
					reqOnly = append(reqOnly, j)
				}
			}
			c.Layout = predict.FeatureLayout{Specs: cal.Layout.Specs, Selected: reqOnly}
			m, err := predict.FitLinear(cal.Training, c.Layout, cfg.Platform.Grid.Levels())
			if err != nil {
				panic(err)
			}
			c.Model = m
			c.Training = cal.Training.Clone()
			return manager.NewReTail(app.QoS(), c)
		},
	}
	// Canonical cell order: load-major, variant-minor. The variant
	// constructors only read the shared calibration (Clone and FitLinear
	// never mutate their source), so cells run concurrently.
	var cells []SweepCell[*core.Result]
	for _, lf := range cfg.Loads {
		rps := maxLoad * lf
		dur := cfg.runDuration(app, rps)
		for _, name := range AblationVariants {
			mk := variants[name]
			cells = append(cells, SweepCell[*core.Result]{
				Label: fmt.Sprintf("%s/load=%.2f/%s", app.Name(), lf, name),
				Run: func() (*core.Result, error) {
					return core.Run(core.RunConfig{
						App: app, Platform: cfg.Platform, Manager: mk(),
						RPS: rps, Warmup: dur / 5, Duration: dur, Seed: cfg.Seed,
					})
				},
			})
		}
	}
	runs, err := RunSweep(cfg.Parallel, cells)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, lf := range cfg.Loads {
		for _, name := range AblationVariants {
			r := runs[idx]
			idx++
			res.Cells = append(res.Cells, AblationCell{
				Variant: name, Load: lf,
				PowerW: r.AvgPowerW, Tail: r.TailAtQoSPct, QoSMet: r.QoSMet, Drops: r.Dropped,
			})
		}
	}
	return res, nil
}

// Render prints power and QoS per variant across loads.
func (r *AblationResult) Render() string {
	loads := []float64{}
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.Load] {
			seen[c.Load] = true
			loads = append(loads, c.Load)
		}
	}
	header := []string{"variant"}
	for _, l := range loads {
		header = append(header, fmt.Sprintf("W@%s", pct(l)), fmt.Sprintf("tail@%s", pct(l)))
	}
	t := &table{header: header}
	for _, v := range AblationVariants {
		row := []string{v}
		for _, l := range loads {
			for _, c := range r.Cells {
				if c.Variant == v && c.Load == l {
					tail := dur(c.Tail)
					if !c.QoSMet {
						tail += "!"
					}
					row = append(row, f2(c.PowerW), tail)
				}
			}
		}
		t.add(row...)
	}
	return fmt.Sprintf("Ablation — %s (QoS %s; '!' marks a violation)\n%s", r.App, r.QoS.String(), t.String())
}
