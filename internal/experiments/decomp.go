package experiments

import (
	"fmt"

	"retail/internal/core"
	"retail/internal/features"
	"retail/internal/manager"
	"retail/internal/nn"
	"retail/internal/predict"
	"retail/internal/workload"
)

// Fig 12 — ReTail decomposition: which of the three components (feature
// selection, prediction model, power-management algorithm) delivers the
// savings. Two feature spaces (request features only — Adrenaline's and
// Gemini's space — vs request+application features) crossed with four
// mechanisms:
//
//	coarse      — Pegasus-style application-level control (no per-request)
//	adrenaline  — classification-based per-request boost
//	nn-alg1     — Algorithm 1 on an NN predictor
//	lr-alg1     — Algorithm 1 on the linear predictor (full ReTail)
//
// Rubik appears implicitly as the feature-free latency-based point via its
// own Fig 11 column.

// Fig12Cell is one (feature space, mechanism, load) measurement.
type Fig12Cell struct {
	FeatureSpace string // "request-only" or "request+app"
	Mechanism    string
	Load         float64
	PowerW       float64
	Tail         float64
	QoSMet       bool
}

// Fig12Result reproduces Fig 12 for one application.
type Fig12Result struct {
	App   string
	QoS   workload.QoS
	Cells []Fig12Cell
}

// Fig12Mechanisms lists the four mechanisms in presentation order.
var Fig12Mechanisms = []string{"coarse", "adrenaline", "nn-alg1", "lr-alg1"}

// Fig12 runs the decomposition on one application (the paper plots Xapian
// and Shore, the two that need application features).
func Fig12(cfg Config, appName string) (*Fig12Result, error) {
	app := workload.ByName(appName)
	if app == nil {
		return nil, fmt.Errorf("experiments: unknown app %q", appName)
	}
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxLoad := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed)
	res := &Fig12Result{App: app.Name(), QoS: app.QoS()}

	// Request-only feature space: rerun selection with every application
	// feature rejected (lateness threshold just above zero).
	reqSel, err := requestOnlySelection(cal)
	if err != nil {
		return nil, err
	}
	spaces := []struct {
		name     string
		selected []int
	}{
		{"request-only", reqSel},
		{"request+app", cal.Selection.Selected},
	}

	// Models for both feature spaces are trained up front (deterministic:
	// seeded fits on the shared training set); the runs themselves then
	// fan out as independent cells in canonical space-major, load-major,
	// mechanism-minor order. Iterating Fig12Mechanisms (not a map) also
	// pins the Cells slice — and hence the CSV export — to a stable order.
	type cellKey struct {
		space string
		load  float64
		mech  string
	}
	var keys []cellKey
	var cells []SweepCell[*core.Result]
	for _, space := range spaces {
		layout := predict.FeatureLayout{Specs: app.FeatureSpecs(), Selected: space.selected}
		lrModel, err := predict.FitLinear(cal.Training, layout, cfg.Platform.Grid.Levels())
		if err != nil {
			return nil, err
		}
		nnModel, err := fitSpaceNN(cfg, cal, space.selected)
		if err != nil {
			return nil, err
		}
		mechanisms := map[string]func() manager.Manager{
			"coarse": func() manager.Manager { return manager.NewPegasus(app.QoS()) },
			"adrenaline": func() manager.Manager {
				return cal.NewAdrenaline()
			},
			"nn-alg1": func() manager.Manager {
				c := manager.DefaultReTailConfig()
				c.Layout = layout
				c.Model = nnModel
				c.Stage1Frac = stage1For(cal, space.name)
				return manager.NewReTail(app.QoS(), c)
			},
			"lr-alg1": func() manager.Manager {
				c := manager.DefaultReTailConfig()
				c.Layout = layout
				c.Model = lrModel
				c.Training = cal.Training.Clone()
				c.Stage1Frac = stage1For(cal, space.name)
				return manager.NewReTail(app.QoS(), c)
			},
		}
		for _, lf := range cfg.Loads {
			rps := maxLoad * lf
			dur := cfg.runDuration(app, rps)
			for _, mech := range Fig12Mechanisms {
				mk := mechanisms[mech]
				keys = append(keys, cellKey{space.name, lf, mech})
				cells = append(cells, SweepCell[*core.Result]{
					Label: fmt.Sprintf("%s/%s/load=%.2f/%s", app.Name(), space.name, lf, mech),
					Run: func() (*core.Result, error) {
						return core.Run(core.RunConfig{
							App: app, Platform: cfg.Platform, Manager: mk(),
							RPS: rps, Warmup: dur / 5, Duration: dur, Seed: cfg.Seed,
						})
					},
				})
			}
		}
	}
	runs, err := RunSweep(cfg.Parallel, cells)
	if err != nil {
		return nil, err
	}
	for i, r := range runs {
		res.Cells = append(res.Cells, Fig12Cell{
			FeatureSpace: keys[i].space, Mechanism: keys[i].mech, Load: keys[i].load,
			PowerW: r.AvgPowerW, Tail: r.TailAtQoSPct, QoSMet: r.QoSMet,
		})
	}
	return res, nil
}

// requestOnlySelection reruns feature selection with application features
// excluded.
func requestOnlySelection(cal *core.Calibration) ([]int, error) {
	ds := features.Dataset{Specs: cal.App.FeatureSpecs()}
	samples := cal.Training.At(cal.Platform.Grid.MaxLevel())
	for _, s := range samples {
		ds.X = append(ds.X, s.Features)
		ds.Service = append(ds.Service, s.Service)
	}
	opt := features.DefaultOptions()
	opt.LatenessThreshold = 1e-9 // reject every application feature
	sel, err := features.Select(ds, opt)
	if err != nil {
		return nil, err
	}
	return sel.Selected, nil
}

// fitSpaceNN trains an NN on the given feature subset (all request
// features when the subset is empty, matching Gemini's "all available at
// arrival" policy).
func fitSpaceNN(cfg Config, cal *core.Calibration, selected []int) (*predict.NNModel, error) {
	inputs := selected
	if len(inputs) == 0 {
		for j, s := range cal.App.FeatureSpecs() {
			if s.RequestFeature() {
				inputs = append(inputs, j)
			}
		}
		if len(inputs) == 0 {
			inputs = []int{0}
		}
	}
	nncfg := nn.TunedConfig(len(inputs), 2, 32, 30, 32)
	if cfg.GeminiNN != nil {
		nncfg = *cfg.GeminiNN
		nncfg.InputDim = len(inputs)
	}
	return predict.FitNN(cal.Training, cfg.Platform.Grid, nncfg, cfg.Platform.Grid.MaxLevel(), inputs)
}

// stage1For returns the stage-1 split only for the full feature space;
// request-only spaces never wait on application features.
func stage1For(cal *core.Calibration, space string) func(*workload.Request) float64 {
	if space == "request-only" {
		return func(*workload.Request) float64 { return 0 }
	}
	return cal.Stage1Frac()
}

// Render prints one row per (space, mechanism) with power across loads.
func (r *Fig12Result) Render() string {
	// Collect loads in order.
	loadSet := []float64{}
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.Load] {
			seen[c.Load] = true
			loadSet = append(loadSet, c.Load)
		}
	}
	header := []string{"feature space", "mechanism"}
	for _, l := range loadSet {
		header = append(header, fmt.Sprintf("W@%s", pct(l)))
	}
	header = append(header, "QoS")
	t := &table{header: header}
	for _, space := range []string{"request-only", "request+app"} {
		for _, mech := range Fig12Mechanisms {
			row := []string{space, mech}
			met := true
			for _, l := range loadSet {
				for _, c := range r.Cells {
					if c.FeatureSpace == space && c.Mechanism == mech && c.Load == l {
						row = append(row, f2(c.PowerW))
						met = met && c.QoSMet
					}
				}
			}
			verdict := "OK"
			if !met {
				verdict = "violations"
			}
			row = append(row, verdict)
			t.add(row...)
		}
	}
	return "Fig 12 — ReTail decomposition for " + r.App + "\n" + t.String()
}
