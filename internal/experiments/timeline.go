package experiments

import (
	"fmt"

	"retail/internal/colocate"
	"retail/internal/core"
	"retail/internal/manager"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/trace"
	"retail/internal/workload"
)

// ---------------------------------------------------------------------------
// Fig 13 — PARTIES + ReTail synergy under colocation.

// Fig13Point samples node power and per-tenant tails at one instant.
type Fig13Point struct {
	At     sim.Time
	PowerW float64
	Tail   map[string]float64
}

// Fig13Result reproduces Fig 13: Moses and Silo colocated, an
// application-level allocation first (all cores at max — the PARTIES
// feasible point), then ReTail layered on both tenants at SwitchAt.
type Fig13Result struct {
	SwitchAt      sim.Time
	Points        []Fig13Point
	PowerBefore   float64 // average node power before the switch
	PowerAfter    float64 // average node power in the settled after-period
	SavingPercent float64
	QoSMet        map[string]bool
}

// Fig13 runs the colocation timeline.
func Fig13(cfg Config) (*Fig13Result, error) {
	platform := cfg.Platform
	half := platform.Workers / 2
	if half == 0 {
		half = 1
	}
	mkTenant := func(name string, workers int, seed int64) (*colocate.Tenant, error) {
		app := workload.ByName(name)
		cal, err := core.Calibrate(app, platform.WithWorkers(workers), cfg.SamplesPerLevel, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rps := core.CalibrateMaxLoad(app, platform.WithWorkers(workers), cfg.Seed) * 0.5
		return &colocate.Tenant{Cal: cal, Workers: workers, RPS: rps, Seed: seed}, nil
	}
	moses, err := mkTenant("moses", half, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	silo, err := mkTenant("silo", platform.Workers-half, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	node := colocate.NewNode([]*colocate.Tenant{moses, silo}, platform)

	e := sim.NewEngine()
	node.Start(e)
	const switchAt = 5.0
	const horizon = 15.0
	res := &Fig13Result{SwitchAt: switchAt, QoSMet: map[string]bool{}}

	e.At(1, "warm", func(en *sim.Engine) { node.ResetEnergy(en) })
	e.At(switchAt, "retail-on", func(en *sim.Engine) {
		if _, err := node.EnableReTail(en, 0); err != nil {
			panic(err)
		}
		if _, err := node.EnableReTail(en, 1); err != nil {
			panic(err)
		}
	})
	// Sample node power every 250 ms via windowed energy deltas.
	var lastEnergy float64
	var lastAt sim.Time = 1
	energyAt := func(now sim.Time) float64 {
		total := 0.0
		for _, t := range node.Tenants {
			total += t.Server.Socket.EnergyJoules(now)
		}
		return total + platform.Power.UncoreW*float64(now-1)
	}
	var sampleTimes []sim.Time
	for ts := sim.Time(1.25); ts <= horizon; ts += 0.25 {
		sampleTimes = append(sampleTimes, ts)
	}
	for _, ts := range sampleTimes {
		ts := ts
		e.At(ts, "sample", func(en *sim.Engine) {
			now := en.Now()
			eJ := energyAt(now)
			p := (eJ - lastEnergy) / float64(now-lastAt)
			lastEnergy, lastAt = eJ, now
			pt := Fig13Point{At: now, PowerW: p, Tail: map[string]float64{}}
			for _, t := range node.Tenants {
				if tail, ok := t.Lat.Percentile(t.Cal.App.QoS().Percentile); ok {
					pt.Tail[t.Cal.App.Name()] = tail
				}
			}
			res.Points = append(res.Points, pt)
		})
	}
	e.Run(horizon)
	for _, t := range node.Tenants {
		t.Gen.Stop()
	}

	// Aggregate before/after power from the samples (skip 2 s of settling
	// after the switch).
	var beforeSum, afterSum float64
	var beforeN, afterN int
	for _, p := range res.Points {
		switch {
		case p.At < switchAt:
			beforeSum += p.PowerW
			beforeN++
		case p.At > switchAt+2:
			afterSum += p.PowerW
			afterN++
		}
	}
	if beforeN > 0 {
		res.PowerBefore = beforeSum / float64(beforeN)
	}
	if afterN > 0 {
		res.PowerAfter = afterSum / float64(afterN)
	}
	if res.PowerBefore > 0 {
		res.SavingPercent = 1 - res.PowerAfter/res.PowerBefore
	}
	for _, t := range node.Tenants {
		tail, _ := t.Lat.Percentile(t.Cal.App.QoS().Percentile)
		res.QoSMet[t.Cal.App.Name()] = tail <= float64(t.Cal.App.QoS().Latency)
	}
	return res, nil
}

// Render prints the power timeline and the before/after summary.
func (r *Fig13Result) Render() string {
	t := &table{header: []string{"t", "node W"}}
	for i, p := range r.Points {
		if i%4 != 0 {
			continue
		}
		t.add(fmt.Sprintf("%.2fs", float64(p.At)), f2(p.PowerW))
	}
	return fmt.Sprintf(
		"Fig 13 — PARTIES→ReTail handoff at t=%.0fs: %.1fW → %.1fW (saving %s; QoS %v)\n%s",
		float64(r.SwitchAt), r.PowerBefore, r.PowerAfter, pct(r.SavingPercent), r.QoSMet, t.String())
}

// ---------------------------------------------------------------------------
// Fig 14 — model drift under batch-job interference, online retraining.

// Fig14Result reproduces Fig 14's three traces plus recovery metrics.
type Fig14Result struct {
	InterfereAt sim.Time
	Factor      float64

	TailTrace []manager.TracePoint // p99 over time
	RMSETrace []manager.TracePoint // RMSE/QoS over time
	FreqTrace []manager.TracePoint // mean core level over time
	Retrains  int
	// RecoverySeconds is the time from interference onset until the tail
	// stays back under QoS.
	RecoverySeconds float64
	ViolatedBefore  bool // sanity: no violation before onset
	QoSMetAfter     bool
	// Flight is the span flight recorder, populated when Config.Trace is
	// set (nil otherwise). Under interference its audit shifts violation
	// attribution toward misprediction until the retrain lands.
	Flight *trace.FlightRecorder
}

// Fig14 runs Moses at 20% load, injects interference at t=5 s, and traces
// the recovery loop: drift detection → retrain → tail back under QoS.
func Fig14(cfg Config) (*Fig14Result, error) {
	app := workload.ByName("moses")
	platform := cfg.Platform
	cal, err := core.Calibrate(app, platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rps := core.CalibrateMaxLoad(app, platform, cfg.Seed) * 0.2
	rt := cal.NewReTail()
	rt.EnableTraces()

	const onset = 5.0
	const horizon = 15.0
	const factor = 1.5

	e := sim.NewEngine()
	srv := serverFor(platform, app, cfg.Seed)
	rt.Attach(e, srv)
	res := &Fig14Result{InterfereAt: onset, Factor: factor}
	if cfg.Trace {
		res.Flight = trace.NewFlightRecorder(trace.FlightRecorderConfig{QoS: app.QoS()})
		res.Flight.Attach(srv)
		rt.SetDecisionSink(res.Flight)
	}

	lat := newTimedTail(app.QoS().Percentile)
	srv.CompletedSink = func(en *sim.Engine, r *workload.Request) {
		lat.add(en.Now(), float64(r.Sojourn()))
	}
	gen := workload.NewGenerator(app, rps, cfg.Seed+5, srv.Submit)
	gen.Start(e)
	e.At(onset, "interfere", func(en *sim.Engine) {
		// The batch job takes half the cores' effective capacity via
		// shared-resource contention; modeled as a service-time inflation.
		srv.SetInterference(en, factor)
	})
	// Trace tail and frequency every 100 ms.
	for ts := sim.Time(0.5); ts <= horizon; ts += 0.1 {
		ts := ts
		e.At(ts, "trace", func(en *sim.Engine) {
			if tail, ok := lat.tail(en.Now(), 2.0); ok {
				res.TailTrace = append(res.TailTrace, manager.TracePoint{At: en.Now(), Value: tail})
			}
			res.FreqTrace = append(res.FreqTrace, manager.TracePoint{At: en.Now(), Value: colocate.MeanLevel(srv)})
		})
	}
	e.Run(horizon)
	gen.Stop()

	_, res.RMSETrace = rt.Traces()
	res.Retrains = rt.Retrains()
	qos := float64(app.QoS().Latency)
	// Find recovery: last trace point above QoS after onset.
	lastViolation := -1.0
	for _, p := range res.TailTrace {
		if p.At < onset && p.Value > qos {
			res.ViolatedBefore = true
		}
		if p.At >= onset && p.Value > qos {
			lastViolation = float64(p.At)
		}
	}
	if lastViolation < 0 {
		res.RecoverySeconds = 0
	} else {
		res.RecoverySeconds = lastViolation - onset
	}
	if len(res.TailTrace) > 0 {
		res.QoSMetAfter = res.TailTrace[len(res.TailTrace)-1].Value <= qos
	}
	return res, nil
}

// serverFor builds a bare server on the platform (Fig 14 manages the
// engine and manager wiring itself to interleave trace sampling).
func serverFor(p core.Platform, app workload.App, seed int64) *server.Server {
	return server.New(server.Config{
		App:     app,
		Workers: p.Workers,
		Grid:    p.Grid,
		Power:   p.Power,
		Trans:   p.Trans,
		Seed:    p.Seed ^ seed,
	})
}

// FlightRecorder returns the attached span recorder (nil when tracing is
// off), letting callers export without knowing the concrete result type.
func (r *Fig14Result) FlightRecorder() *trace.FlightRecorder { return r.Flight }

// Render prints the three Fig 14 traces side by side.
func (r *Fig14Result) Render() string {
	t := &table{header: []string{"t", "p-tail", "RMSE/QoS", "mean level"}}
	rmAt := func(at sim.Time) string {
		best := ""
		for _, p := range r.RMSETrace {
			if p.At <= at {
				best = f3(p.Value)
			}
		}
		return best
	}
	fqAt := func(at sim.Time) string {
		best := ""
		for _, p := range r.FreqTrace {
			if p.At <= at {
				best = f2(p.Value)
			}
		}
		return best
	}
	for i, p := range r.TailTrace {
		if i%10 != 0 {
			continue
		}
		t.add(fmt.Sprintf("%.1fs", float64(p.At)), dur(p.Value), rmAt(p.At), fqAt(p.At))
	}
	return fmt.Sprintf(
		"Fig 14 — interference at t=%.0fs (×%.1f): retrains=%d, recovery=%.1fs, settled QoS ok=%v\n%s",
		float64(r.InterfereAt), r.Factor, r.Retrains, r.RecoverySeconds, r.QoSMetAfter, t.String())
}

// timedTail keeps (time, sojourn) pairs for windowed tail queries.
type timedTail struct {
	pct  float64
	at   []sim.Time
	vals []float64
}

func newTimedTail(pct float64) *timedTail { return &timedTail{pct: pct} }

func (t *timedTail) add(at sim.Time, v float64) {
	t.at = append(t.at, at)
	t.vals = append(t.vals, v)
}

// tail returns the percentile over the last span seconds.
func (t *timedTail) tail(now sim.Time, span float64) (float64, bool) {
	var window []float64
	for i := len(t.at) - 1; i >= 0; i-- {
		if float64(now-t.at[i]) > span {
			break
		}
		window = append(window, t.vals[i])
	}
	if len(window) < 10 {
		return 0, false
	}
	return percentileOf(window, t.pct), true
}

func percentileOf(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	// simple insertion sort; windows are small
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}
