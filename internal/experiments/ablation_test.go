package experiments

import (
	"strings"
	"testing"
)

func ablCells(t *testing.T, app string, loads []float64) map[string]map[float64]AblationCell {
	t.Helper()
	cfg := quickCfg()
	cfg.Loads = loads
	res, err := Ablation(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[float64]AblationCell{}
	for _, c := range res.Cells {
		if out[c.Variant] == nil {
			out[c.Variant] = map[float64]AblationCell{}
		}
		out[c.Variant][c.Load] = c
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render")
	}
	return out
}

func TestAblationUnknownApp(t *testing.T) {
	if _, err := Ablation(quickCfg(), "nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// The latency monitor is what makes ReTail QoS-aware at high load: with
// QoS′ pinned to QoS (Gemini's policy), the tail breaches the target.
func TestAblationMonitorMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	cells := ablCells(t, "moses", []float64{0.9})
	if !cells["full"][0.9].QoSMet {
		t.Fatal("full design violated QoS — baseline broken")
	}
	if cells["no-monitor"][0.9].QoSMet {
		t.Error("no-monitor met QoS at 90% load — the monitor should matter")
	}
}

// Queue awareness (Algorithm 1's inner loop): deciding on the head alone
// forces late corrective boosts, costing power (or QoS) at high load.
func TestAblationQueueAwarenessMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	cells := ablCells(t, "moses", []float64{0.9})
	full := cells["full"][0.9]
	head := cells["head-only"][0.9]
	if head.QoSMet && head.PowerW < full.PowerW*0.99 {
		t.Errorf("head-only beat the full design (%.2fW vs %.2fW, QoS met) — queue awareness should matter",
			head.PowerW, full.PowerW)
	}
}

// The two-stage feature-extraction split is what lets Xapian's predictor
// see the matched-document count for queued requests; without it the
// model degrades to a feature-less mean and the power/QoS tradeoff
// worsens on app-feature workloads.
func TestAblationStage1MattersForXapian(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	cells := ablCells(t, "xapian", []float64{0.6})
	full := cells["full"][0.6]
	noS1 := cells["no-stage1"][0.6]
	if !full.QoSMet {
		t.Fatal("full design violated QoS")
	}
	// Without per-request features, either power rises or QoS breaks.
	if noS1.QoSMet && noS1.PowerW < full.PowerW*0.99 {
		t.Errorf("no-stage1 beat the full design (%.2fW vs %.2fW) — the split should matter",
			noS1.PowerW, full.PowerW)
	}
}
