package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickFleetConfig keeps the sweep CI-sized: a 4-node fleet per cell, two
// load points, all four dispatchers × all four node policies.
func quickFleetConfig(seed int64) (Config, FleetOptions) {
	cfg := Quick()
	cfg.Seed = seed
	opt := FleetOptions{
		Nodes:           4,
		WorkersPerNode:  2,
		Loads:           []float64{0.3, 0.7},
		RequestsPerCell: 2500,
	}
	return cfg, opt
}

// TestFleetSweepGolden pins the rendered routing×policy×load table —
// including every cell's placement hash — byte-for-byte against the
// committed golden. Because the placement hashes cover the dispatchers'
// entire routing streams, a pass here is also a determinism proof for
// the routing layer at golden scale. Refresh with -update.
func TestFleetSweepGolden(t *testing.T) {
	cfg, opt := quickFleetConfig(42)
	res, err := FleetSweep(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Render()
	golden := filepath.Join("testdata", "fleet_golden.txt")
	if *updateChaosGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := range gl {
			if i >= len(wl) || gl[i] != wl[i] {
				t.Fatalf("fleet render diverges from golden at line %d:\n got: %q\nwant: %q\n(run with -update after intentional changes)",
					i+1, gl[i], at(wl, i))
			}
		}
		t.Fatalf("fleet render diverges from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
	if res.DistinctWinners() < 2 {
		t.Fatalf("only %d distinct winning dispatchers — the routing axis no longer flips the p99 winner", res.DistinctWinners())
	}
}

func at(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<eof>"
}

// TestFleetSweepMultiSeedSHA pins the SHA-256 of the rendered sweep at
// two seeds: the table is a pure function of (config, seed), and a seed
// change must actually change the output (the hashes differ).
func TestFleetSweepMultiSeedSHA(t *testing.T) {
	seeds := []int64{42, 1007}
	var lines []string
	for _, seed := range seeds {
		cfg, opt := quickFleetConfig(seed)
		res, err := FleetSweep(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(res.Render()))
		lines = append(lines, fmt.Sprintf("seed=%d sha256=%x", seed, sum))
	}
	if lines[0] == lines[1] {
		t.Fatal("different seeds hashed identically")
	}
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "fleet_sha256.txt")
	if *updateChaosGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("multi-seed sweep hashes diverge:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFleetSweepParallelByteIdentical is the sweep half of the dispatcher
// determinism contract: -parallel 1 and -parallel 8 must render the same
// bytes and report identical placement streams cell by cell.
func TestFleetSweepParallelByteIdentical(t *testing.T) {
	run := func(parallel int) *FleetSweepResult {
		cfg, opt := quickFleetConfig(42)
		cfg.Parallel = parallel
		// Shrink further: this test runs the grid twice.
		opt.Loads = []float64{0.5}
		opt.RequestsPerCell = 1500
		res, err := FleetSweep(cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.Render() != par.Render() {
		t.Fatal("-parallel 1 and -parallel 8 rendered different sweeps")
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i].Result, par.Cells[i].Result
		if a.PlacementHash != b.PlacementHash || a.Routed != b.Routed {
			t.Fatalf("cell %d (%s/%s): placement streams diverge across parallelism",
				i, seq.Cells[i].Dispatcher, seq.Cells[i].Policy)
		}
	}
}

// TestFleetSweepCSV sanity-checks the export: header plus one row per
// cell, stable across calls.
func TestFleetSweepCSV(t *testing.T) {
	cfg, opt := quickFleetConfig(42)
	opt.Loads = []float64{0.5}
	opt.Policies = []string{"retail"}
	opt.RequestsPerCell = 1500
	res, err := FleetSweep(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.CSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV not stable across calls")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "load,dispatcher,policy,") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
}
