package experiments

import (
	"bytes"
	"strings"
	"testing"

	"retail/internal/core"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/telemetry"
	"retail/internal/workload"
)

// TestConcurrentInstrumentedCells guards the sweep-runner telemetry rule:
// when cells run concurrently, each must build its own telemetry.Registry
// (or none). Sharing a registry across cells would fan concurrent
// Instrument/AttachTelemetry calls and metric updates into one instrument
// set; per-cell registries keep every cell's control loop isolated. The
// test runs two fully instrumented simulations in one RunSweep worker pool
// and is primarily meaningful under -race: any cross-cell sharing of
// mutable manager/server/telemetry state shows up as a data race. It also
// pins determinism — both cells run the same seeded scenario, so their
// Prometheus expositions must be byte-identical.
func TestConcurrentInstrumentedCells(t *testing.T) {
	cfg := quickCfg()
	app := workload.ByName("xapian")
	cal, err := core.Calibrate(app, cfg.Platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rps := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed) * 0.5

	// One cell = one registry + one instrumented manager + one server. The
	// only state shared between the two cells is the read-only calibration.
	runCell := func() (string, error) {
		reg := telemetry.NewRegistry()
		rt := cal.NewReTail()
		e := sim.NewEngine()
		srv := serverFor(cfg.Platform, app, cfg.Seed)
		rt.Attach(e, srv)
		rt.Instrument(reg, app.Name())
		server.AttachTelemetry(srv, reg, app.Name(), app.QoS())
		gen := workload.NewGenerator(app, rps, cfg.Seed+7, srv.Submit)
		gen.Start(e)
		e.Run(2.0)
		gen.Stop()
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			return "", err
		}
		return buf.String(), nil
	}

	cells := []SweepCell[string]{
		{Label: "telemetry-cell-0", Run: runCell},
		{Label: "telemetry-cell-1", Run: runCell},
	}
	got, err := RunSweep(2, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range got {
		for _, metric := range []string{
			telemetry.MetricRequestsTotal,
			telemetry.MetricDecisionsTotal,
			telemetry.MetricQoSPrime,
		} {
			if !strings.Contains(text, metric) {
				t.Fatalf("cell %d exposition is missing %s:\n%s", i, metric, text)
			}
		}
	}
	if got[0] != got[1] {
		t.Fatal("identically seeded instrumented cells diverged")
	}
}
