package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"retail/internal/fault"
	"retail/internal/telemetry"
)

var updateChaosGolden = flag.Bool("update", false, "rewrite the chaos golden file")

// TestChaosSimGolden pins the deterministic simulator chaos matrix: two
// in-process runs must render byte-identically, and the render must match
// the committed golden (refresh with -update). This is the `retail-chaos
// -sim` output at the default seed, so the golden doubles as CLI
// documentation.
func TestChaosSimGolden(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 42
	a, err := ChaosAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Render()
	if got != b.Render() {
		t.Fatal("ChaosAll is not deterministic: two runs with the same seed rendered differently")
	}
	golden := filepath.Join("testdata", "chaos_golden.txt")
	if *updateChaosGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("chaos render diverges from golden at line %d:\n got: %q\nwant: %q\n(run with -update after intentional changes)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("chaos render diverges from golden in length: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestChaosSimInjectsAndRecovers checks the matrix semantics rather than
// the exact bytes: every faulted cell actually injected something, and the
// ReTail cells show the recovery hooks the plans are designed to hit.
func TestChaosSimInjectsAndRecovers(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 42
	res, err := ChaosAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		seen[c.Plan+"/"+c.Manager] = true
		if c.Completed == 0 {
			t.Errorf("%s/%s: no requests completed", c.Plan, c.Manager)
		}
		switch c.Plan {
		case "drift-step":
			// Drift is applied (and recorded) for every manager, and the
			// inflated service times must show up in the measured tail.
			if c.Injected[fault.SiteDrift] == 0 {
				t.Errorf("drift-step/%s: drift never recorded", c.Manager)
			}
			if c.FaultTail <= c.BaseTail {
				t.Errorf("drift-step/%s: fault tail %.4f ≤ base tail %.4f",
					c.Manager, c.FaultTail, c.BaseTail)
			}
			// ReTail's drift detector must trip and retrain.
			if c.Manager == "retail" && c.Retrains == 0 {
				t.Errorf("drift-step/retail: no retrains — drift recovery never engaged")
			}
		case "overload-burst":
			// The burst lives in the arrival process, not the injector; its
			// signature is a degraded tail during the window.
			if c.FaultTail <= c.BaseTail {
				t.Errorf("overload-burst/%s: fault tail %.4f ≤ base tail %.4f",
					c.Manager, c.FaultTail, c.BaseTail)
			}
		case "predictor-skew":
			// Only ReTail consults the (corrupted) predictor.
			if c.Manager == "retail" && c.Injected[fault.SitePredict] == 0 {
				t.Error("predictor-skew/retail: corrupting predictor never fired")
			}
		}
	}
	for _, want := range []string{
		"drift-step/retail", "overload-burst/rubik", "predictor-skew/gemini",
	} {
		if !seen[want] {
			t.Fatalf("matrix is missing the %s cell", want)
		}
	}
	// The faulted retail runs carry an audit trail.
	if len(res.Audits) == 0 {
		t.Fatal("no audits attached to the faulted retail runs")
	}
}

// TestChaosBurstyMMPP is the nightly bursty-arrival leg: the plan ×
// manager matrix rerun with arrivals from the overload-mmpp cohort spec,
// so overload hits as correlated MMPP trains instead of i.i.d. Poisson
// thinning. The PR 4 degradation ladder must hold unchanged under that
// shape: every cell completes work (no crash or deadlock), drift still
// trips ReTail's retrain, the corrupting predictor still fires, bursts
// and drift still degrade the tail relative to the (already bursty)
// baseline, and the whole matrix stays deterministic.
func TestChaosBurstyMMPP(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 42
	a, err := ChaosAllBursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosAllBursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("bursty chaos matrix is not deterministic across in-process runs")
	}
	if a.Spec != "overload-mmpp" {
		t.Fatalf("matrix ran under spec %q, want overload-mmpp", a.Spec)
	}
	if len(a.Cells) != len(chaosSimPlans())*len(chaosManagers()) {
		t.Fatalf("got %d cells, want %d", len(a.Cells), len(chaosSimPlans())*len(chaosManagers()))
	}
	for _, c := range a.Cells {
		if c.Completed == 0 {
			t.Errorf("%s/%s: no requests completed under correlated bursts", c.Plan, c.Manager)
		}
		switch c.Plan {
		case "drift-step":
			if c.Injected[fault.SiteDrift] == 0 {
				t.Errorf("drift-step/%s: drift never recorded", c.Manager)
			}
			if c.FaultTail <= c.BaseTail {
				t.Errorf("drift-step/%s: fault tail %.4f ≤ base tail %.4f",
					c.Manager, c.FaultTail, c.BaseTail)
			}
			if c.Manager == "retail" && c.Retrains == 0 {
				t.Error("drift-step/retail: drift recovery never engaged under bursty arrivals")
			}
		case "overload-burst":
			if c.FaultTail <= c.BaseTail {
				t.Errorf("overload-burst/%s: fault tail %.4f ≤ base tail %.4f",
					c.Manager, c.FaultTail, c.BaseTail)
			}
		case "predictor-skew":
			if c.Manager == "retail" && c.Injected[fault.SitePredict] == 0 {
				t.Error("predictor-skew/retail: corrupting predictor never fired")
			}
		}
	}
	if len(a.Audits) == 0 {
		t.Fatal("no audits attached to the faulted retail runs")
	}
}

// liveChaosCase describes the plan-specific health assertions for one
// wall-clock replay. timing, when set, names assertions that depend on
// real scheduling (a preempted CI runner can starve the burst window so
// admission control legitimately never fires): a non-empty reason makes
// the harness re-run the whole replay instead of failing, up to a small
// attempt budget, and only the last attempt's verdict counts.
type liveChaosCase struct {
	plan   string
	check  func(t *testing.T, rep *LiveChaosReport)
	timing func(rep *LiveChaosReport) string
}

// TestLiveChaosHealth replays each live fault plan against the wall-clock
// runtime and checks the degradation contract: the recovery machinery did
// visible work, the server ended consistent with its backend, QoS′ stayed
// inside the monitor's clamp band, and no goroutines leaked.
func TestLiveChaosHealth(t *testing.T) {
	cases := []liveChaosCase{
		{plan: "dvfs-flaky", check: func(t *testing.T, rep *LiveChaosReport) {
			if rep.Counts.DVFSWriteErrors == 0 {
				t.Error("dvfs-flaky: no DVFS write errors recorded")
			}
			if rep.Counts.DVFSRetries == 0 {
				t.Error("dvfs-flaky: no DVFS retries — the retry path never engaged")
			}
			if rep.Injected[fault.SiteDVFSWrite] == 0 {
				t.Error("dvfs-flaky: injector fired nothing at the DVFS site")
			}
		}},
		{plan: "overload-burst",
			check: func(t *testing.T, rep *LiveChaosReport) {
				if rep.Counts.Shed == 0 {
					t.Error("overload-burst: admission control shed nothing under the burst")
				}
				if rep.Retries == 0 {
					t.Error("overload-burst: client never retried a shed request")
				}
			},
			timing: func(rep *LiveChaosReport) string {
				if rep.Counts.Shed == 0 {
					return "no shed under the burst"
				}
				if rep.Retries == 0 {
					return "no client retries"
				}
				return ""
			}},
		{plan: "drift-step", check: func(t *testing.T, rep *LiveChaosReport) {
			if rep.Injected[fault.SiteDrift] != 1 {
				t.Errorf("drift-step: drift recorded %d times, want 1", rep.Injected[fault.SiteDrift])
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.plan, func(t *testing.T) {
			plan, err := fault.PlanByName(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			var (
				reg *telemetry.Registry
				rep *LiveChaosReport
			)
			const attempts = 3
			for try := 1; ; try++ {
				reg = telemetry.NewRegistry()
				var err error
				rep, err = RunLiveChaos(LiveChaosConfig{
					Plan:            plan,
					TimeScale:       0.15,
					SamplesPerLevel: 200,
					Seed:            42,
					Registry:        reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				if tc.timing != nil && try < attempts {
					if reason := tc.timing(rep); reason != "" {
						t.Logf("attempt %d/%d: %s — wall-clock scheduling artifact, re-running the replay", try, attempts, reason)
						continue
					}
				}
				break
			}
			if rep.Completed == 0 {
				t.Error("no requests completed")
			}
			if !rep.GridConsistent {
				t.Error("server's applied levels disagree with the backend after shutdown")
			}
			lo := time.Duration(0.02 * float64(rep.QoS))
			hi := time.Duration(1.1 * float64(rep.QoS))
			if rep.QoSPrime < lo || rep.QoSPrime > hi {
				t.Errorf("QoS' %v escaped the clamp band [%v, %v]", rep.QoSPrime, lo, hi)
			}
			tc.check(t, rep)
			// The injector's counters must have landed in the schema scrape.
			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), telemetry.MetricFaultsInjected) {
				t.Error("scrape is missing the faults-injected counter family")
			}
			// Everything the replay started must be gone.
			deadline := time.Now().Add(3 * time.Second)
			for runtime.NumGoroutine() > before+2 {
				if time.Now().After(deadline) {
					t.Fatalf("goroutine leak: %d running, started with %d",
						runtime.NumGoroutine(), before)
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
