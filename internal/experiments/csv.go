package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVExportable is implemented by experiment results that can emit their
// raw series for external plotting (the figures in the paper are plots of
// exactly these columns).
type CSVExportable interface {
	CSV(w io.Writer) error
}

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// CSV emits the Fig 1 series.
func (r *Fig1Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"rps", "service_p50_s", "sojourn_p50_s", "sojourn_p99_s"}}
	for _, p := range r.Points {
		rows = append(rows, []string{ftoa(p.RPS), ftoa(p.MeanSvc), ftoa(p.P50Sojourn), ftoa(p.P99Sojourn)})
	}
	return writeAll(w, rows)
}

// CSV emits every app's CDF points plus the Table II summary columns.
func (r *Fig2Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "value_s", "fraction", "median_s", "p90_s", "median_to_tail"}}
	for _, a := range r.Apps {
		for _, p := range a.CDF {
			rows = append(rows, []string{
				a.App, ftoa(p.Value), ftoa(p.Fraction),
				ftoa(a.Median), ftoa(a.P90), ftoa(a.MedianToTail),
			})
		}
	}
	return writeAll(w, rows)
}

// CSV emits the correlation table.
func (r *Fig3Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "feature", "pearson", "fit_slope", "fit_intercept"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, row.Feature, ftoa(row.Pearson), ftoa(row.FitSlope), ftoa(row.FitIntercept)})
	}
	return writeAll(w, rows)
}

// CSV emits the per-type distribution summaries.
func (r *Fig4Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "tx_type", "value_s", "fraction"}}
	for _, a := range r.Apps {
		for _, ty := range a.Types {
			for _, p := range ty.CDF {
				rows = append(rows, []string{a.App, ty.Type, ftoa(p.Value), ftoa(p.Fraction)})
			}
		}
	}
	return writeAll(w, rows)
}

// CSV emits the Fig 5 correlation/fit rows.
func (r *Fig5Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "feature", "subset", "pearson", "fit_slope", "fit_intercept", "n"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, row.Feature, row.Subset,
			ftoa(row.Pearson), ftoa(row.FitSlope), ftoa(row.FitIntercept), strconv.Itoa(row.N)})
	}
	return writeAll(w, rows)
}

// CSV emits the Table IV rows.
func (r *TableIVResult) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "model", "structure", "train_s", "infer_s", "r2", "rmse_over_qos"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App, row.Model, row.Structure,
			ftoa(row.TrainTime.Seconds()), ftoa(row.InferTime.Seconds()),
			ftoa(row.R2), ftoa(row.RMSEoQoS)})
	}
	return writeAll(w, rows)
}

// CSV emits the fit curves.
func (r *Fig8Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"doc_count", "truth_s", "lr_s", "nng_s", "nnt_s"}}
	for _, p := range r.Points {
		rows = append(rows, []string{ftoa(p.DocCount), ftoa(p.Truth), ftoa(p.LR), ftoa(p.NNG), ftoa(p.NNT)})
	}
	return writeAll(w, rows)
}

// CSV emits the convergence curves.
func (r *Fig9Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "n", "r2"}}
	for _, a := range r.Apps {
		for _, p := range a.Points {
			rows = append(rows, []string{a.App, strconv.Itoa(p.N), ftoa(p.R2)})
		}
	}
	return writeAll(w, rows)
}

// CSV emits the full power/drop/tail sweep.
func (r *Fig11Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "load", "rps", "manager", "power_w", "maxfreq_w", "drop_rate", "tail_s", "qos_met"}}
	for _, a := range r.Apps {
		for _, p := range a.Points {
			for _, m := range ManagerNames {
				rows = append(rows, []string{
					a.App, ftoa(p.Load), ftoa(p.RPS), m,
					ftoa(p.PowerW[m]), ftoa(p.MaxFreqW), ftoa(p.DropRate[m]),
					ftoa(p.Tail[m]), fmt.Sprintf("%v", p.QoSMet[m]),
				})
			}
		}
	}
	return writeAll(w, rows)
}

// CSV emits the decomposition cells.
func (r *Fig12Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "feature_space", "mechanism", "load", "power_w", "tail_s", "qos_met"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{r.App, c.FeatureSpace, c.Mechanism,
			ftoa(c.Load), ftoa(c.PowerW), ftoa(c.Tail), fmt.Sprintf("%v", c.QoSMet)})
	}
	return writeAll(w, rows)
}

// CSV emits the colocation power timeline.
func (r *Fig13Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"t_s", "power_w"}}
	for _, p := range r.Points {
		rows = append(rows, []string{ftoa(float64(p.At)), ftoa(p.PowerW)})
	}
	return writeAll(w, rows)
}

// CSV emits the drift-recovery traces (one row per tail-trace point with
// step-held RMSE and frequency columns).
func (r *Fig14Result) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"t_s", "tail_s", "rmse_over_qos", "mean_level"}}
	rm, fq := 0.0, 0.0
	ri, fi := 0, 0
	for _, p := range r.TailTrace {
		for ri < len(r.RMSETrace) && r.RMSETrace[ri].At <= p.At {
			rm = r.RMSETrace[ri].Value
			ri++
		}
		for fi < len(r.FreqTrace) && r.FreqTrace[fi].At <= p.At {
			fq = r.FreqTrace[fi].Value
			fi++
		}
		rows = append(rows, []string{ftoa(float64(p.At)), ftoa(p.Value), ftoa(rm), ftoa(fq)})
	}
	return writeAll(w, rows)
}

// CSV emits the ablation sweep.
func (r *AblationResult) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"app", "variant", "load", "power_w", "tail_s", "qos_met"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{r.App, c.Variant, ftoa(c.Load),
			ftoa(c.PowerW), ftoa(c.Tail), fmt.Sprintf("%v", c.QoSMet)})
	}
	return writeAll(w, rows)
}

// CSV emits the spike QoS′ trace.
func (r *LoadSpikeResult) CSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"t_s", "qos_prime_s"}}
	for _, p := range r.QoSPrimeTrace {
		rows = append(rows, []string{ftoa(float64(p.At)), ftoa(p.Value)})
	}
	return writeAll(w, rows)
}
