package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"retail/internal/core"
	"retail/internal/linalg"
	"retail/internal/manager"
	"retail/internal/stats"
	"retail/internal/workload"
)

// ---------------------------------------------------------------------------
// Fig 1 — ImgDNN service time stays flat while sojourn time grows with RPS.

// Fig1Point is one load point of the Fig 1 series.
type Fig1Point struct {
	RPS        float64
	MeanSvc    float64 // p50 service time, seconds
	P99Sojourn float64
	P50Sojourn float64
}

// Fig1Result reproduces Fig 1.
type Fig1Result struct {
	App    string
	Points []Fig1Point
}

// Fig1 sweeps ImgDNN load on the default (max-frequency) system and
// records service vs sojourn time.
func Fig1(cfg Config) (*Fig1Result, error) {
	app := workload.ByName("imgdnn")
	maxLoad := core.CalibrateMaxLoad(app, cfg.Platform, cfg.Seed)
	res := &Fig1Result{App: app.Name()}
	for _, lf := range cfg.Loads {
		rps := maxLoad * lf
		dur := cfg.runDuration(app, rps)
		r, err := core.Run(core.RunConfig{
			App: app, Platform: cfg.Platform, Manager: manager.NewMaxFreq(),
			RPS: rps, Warmup: dur / 5, Duration: dur, Seed: cfg.Seed, CollectSamples: true,
		})
		if err != nil {
			return nil, err
		}
		svc := make([]float64, len(r.Samples))
		for i, s := range r.Samples {
			svc[i] = s.Service
		}
		res.Points = append(res.Points, Fig1Point{
			RPS:        rps,
			MeanSvc:    stats.Percentile(svc, 50),
			P50Sojourn: r.P50,
			P99Sojourn: r.P99,
		})
	}
	return res, nil
}

// Render prints the Fig 1 series.
func (r *Fig1Result) Render() string {
	t := &table{header: []string{"RPS", "service(p50)", "sojourn(p50)", "sojourn(p99)"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%.0f", p.RPS), dur(p.MeanSvc), dur(p.P50Sojourn), dur(p.P99Sojourn))
	}
	return "Fig 1 — " + r.App + ": service time constant, sojourn grows with RPS\n" + t.String()
}

// ---------------------------------------------------------------------------
// Fig 2 + Table II — service-time CDFs, median/p90 markers, median:tail.

// Fig2App summarizes one application's service-time distribution.
type Fig2App struct {
	App           string
	QoS           workload.QoS
	Median        float64
	P90           float64
	MedianToTail  float64 // median/p90, Table II's ratio
	CDF           []stats.CDFPoint
	LittleVariant bool // the "little or no variation" category
}

// Fig2Result reproduces Fig 2 and Table II.
type Fig2Result struct {
	Apps []Fig2App
}

// Fig2 profiles each application's intrinsic service times at max
// frequency.
func Fig2(cfg Config) (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, app := range workload.All() {
		rng := rand.New(rand.NewSource(cfg.Seed))
		n := cfg.SamplesPerLevel * 4
		svc := make([]float64, n)
		for i := 0; i < n; i++ {
			svc[i] = float64(app.Generate(rng).ServiceBase)
		}
		sort.Float64s(svc)
		med := stats.PercentileSorted(svc, 50)
		p90 := stats.PercentileSorted(svc, 90)
		res.Apps = append(res.Apps, Fig2App{
			App: app.Name(), QoS: app.QoS(),
			Median: med, P90: p90, MedianToTail: med / p90,
			CDF:           stats.CDF(svc, 50),
			LittleVariant: med/p90 >= 0.8,
		})
	}
	return res, nil
}

// Render prints the Table II rows with an ASCII CDF sparkline per app
// (a near-vertical ramp means little service-time variation).
func (r *Fig2Result) Render() string {
	t := &table{header: []string{"app", "QoS", "median svc", "p90 svc", "median:tail", "category", "CDF"}}
	for _, a := range r.Apps {
		cat := "wide variation"
		if a.LittleVariant {
			cat = "little/no variation"
		}
		t.add(a.App, a.QoS.String(), dur(a.Median), dur(a.P90), f2(a.MedianToTail), cat, renderCDF(a.CDF, 24))
	}
	return "Fig 2 / Table II — service time distribution per app\n" + t.String()
}

// ---------------------------------------------------------------------------
// Fig 3 — request-length interpretations: only the right one correlates.

// Fig3Row scores one interpretation of request length.
type Fig3Row struct {
	App          string
	Feature      string
	Pearson      float64
	Correlates   bool
	FitSlope     float64 // LR fit line, seconds per unit
	FitIntercept float64
}

// Fig3Result reproduces Fig 3.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 correlates each candidate length interpretation with service time
// for Moses (phrase chars vs word count) and Sphinx (path length vs audio
// size).
func Fig3(cfg Config) (*Fig3Result, error) {
	cases := []struct{ app, feature string }{
		{"moses", "phrase_chars"},
		{"moses", "word_count"},
		{"sphinx", "path_len"},
		{"sphinx", "audio_mb"},
	}
	res := &Fig3Result{}
	for _, c := range cases {
		app := workload.ByName(c.app)
		rng := rand.New(rand.NewSource(cfg.Seed))
		idx := workload.FeatureIndex(app, c.feature)
		n := cfg.SamplesPerLevel * 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			r := app.Generate(rng)
			xs[i] = r.Features[idx]
			ys[i] = float64(r.ServiceBase)
		}
		rho, err := stats.Pearson(xs, ys)
		if err != nil {
			return nil, err
		}
		slope, intercept, err := linalg.LinearFit(xs, ys)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig3Row{
			App: c.app, Feature: c.feature, Pearson: rho,
			Correlates: rho > 0.8, FitSlope: slope, FitIntercept: intercept,
		})
	}
	return res, nil
}

// Render prints the correlation table.
func (r *Fig3Result) Render() string {
	t := &table{header: []string{"app", "length interpretation", "Pearson ρ", "correlates?", "LR fit"}}
	for _, row := range r.Rows {
		verdict := "no"
		if row.Correlates {
			verdict = "YES"
		}
		t.add(row.App, row.Feature, f3(row.Pearson), verdict,
			fmt.Sprintf("%.3g·x + %.3g", row.FitSlope, row.FitIntercept))
	}
	return "Fig 3 — request-length interpretations vs service time\n" + t.String()
}

// ---------------------------------------------------------------------------
// Fig 4 — per-transaction-type service CDFs for Shore and Silo.

// Fig4Type is one transaction type's distribution summary.
type Fig4Type struct {
	Type         string
	Median, P90  float64
	MedianToTail float64
	CDF          []stats.CDFPoint
}

// Fig4App groups the per-type rows of one OLTP engine.
type Fig4App struct {
	App   string
	Types []Fig4Type
}

// Fig4Result reproduces Fig 4.
type Fig4Result struct {
	Apps []Fig4App
}

// Fig4 profiles Shore's and Silo's per-type service distributions.
func Fig4(cfg Config) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, name := range []string{"shore", "silo"} {
		app := workload.ByName(name)
		typeIdx := workload.FeatureIndex(app, "tx_type")
		rng := rand.New(rand.NewSource(cfg.Seed))
		perType := map[int][]float64{}
		for i := 0; i < cfg.SamplesPerLevel*8; i++ {
			r := app.Generate(rng)
			ty := int(r.Features[typeIdx])
			perType[ty] = append(perType[ty], float64(r.ServiceBase))
		}
		fa := Fig4App{App: name}
		for ty := 0; ty < 4; ty++ {
			svc := perType[ty]
			if len(svc) == 0 {
				continue
			}
			sort.Float64s(svc)
			med := stats.PercentileSorted(svc, 50)
			p90 := stats.PercentileSorted(svc, 90)
			fa.Types = append(fa.Types, Fig4Type{
				Type: workload.TxTypeName(ty), Median: med, P90: p90,
				MedianToTail: med / p90, CDF: stats.CDF(svc, 30),
			})
		}
		res.Apps = append(res.Apps, fa)
	}
	return res, nil
}

// Render prints the per-type distribution table.
func (r *Fig4Result) Render() string {
	t := &table{header: []string{"app", "tx type", "median", "p90", "median:tail"}}
	for _, a := range r.Apps {
		for _, ty := range a.Types {
			t.add(a.App, ty.Type, dur(ty.Median), dur(ty.P90), f2(ty.MedianToTail))
		}
	}
	return "Fig 4 — per-transaction-type service CDFs (Shore/Silo)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Fig 5 — application features explain the remaining variation.

// Fig5Row is one (app, feature, subset) correlation with its fit line.
type Fig5Row struct {
	App, Feature, Subset string
	Pearson              float64
	FitSlope             float64
	FitIntercept         float64
	N                    int
}

// Fig5Result reproduces Fig 5.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 correlates Xapian's matched-document count, Shore's NEW_ORDER item
// count (split by rollback), and STOCK_LEVEL's distinct-item count with
// service time.
func Fig5(cfg Config) (*Fig5Result, error) {
	res := &Fig5Result{}
	add := func(appName, feature, subset string, filter func(*workload.Request) bool) error {
		app := workload.ByName(appName)
		idx := workload.FeatureIndex(app, feature)
		rng := rand.New(rand.NewSource(cfg.Seed))
		var xs, ys []float64
		for i := 0; i < cfg.SamplesPerLevel*20 && len(xs) < cfg.SamplesPerLevel*2; i++ {
			r := app.Generate(rng)
			if filter != nil && !filter(r) {
				continue
			}
			xs = append(xs, r.Features[idx])
			ys = append(ys, float64(r.ServiceBase))
		}
		if len(xs) < 10 {
			return fmt.Errorf("experiments: too few %s/%s samples", appName, subset)
		}
		rho, err := stats.Pearson(xs, ys)
		if err != nil {
			return err
		}
		slope, intercept, err := linalg.LinearFit(xs, ys)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Fig5Row{
			App: appName, Feature: feature, Subset: subset,
			Pearson: rho, FitSlope: slope, FitIntercept: intercept, N: len(xs),
		})
		return nil
	}
	typeIs := func(app workload.App, ty int) func(*workload.Request) bool {
		idx := workload.FeatureIndex(app, "tx_type")
		return func(r *workload.Request) bool { return int(r.Features[idx]) == ty }
	}
	shore := workload.ByName("shore")
	rbIdx := workload.FeatureIndex(shore, "rollback")
	if err := add("xapian", "doc_count", "all", nil); err != nil {
		return nil, err
	}
	if err := add("shore", "item_count", "NEW_ORDER (commit)", func(r *workload.Request) bool {
		return typeIs(shore, workload.TxNewOrder)(r) && r.Features[rbIdx] == 0
	}); err != nil {
		return nil, err
	}
	if err := add("shore", "item_count", "NEW_ORDER (rollback)", func(r *workload.Request) bool {
		return typeIs(shore, workload.TxNewOrder)(r) && r.Features[rbIdx] == 1
	}); err != nil {
		return nil, err
	}
	if err := add("shore", "distinct_items", "STOCK_LEVEL", typeIs(shore, workload.TxStockLevel)); err != nil {
		return nil, err
	}
	silo := workload.ByName("silo")
	if err := add("silo", "distinct_items", "STOCK_LEVEL", typeIs(silo, workload.TxStockLevel)); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the Fig 5 rows.
func (r *Fig5Result) Render() string {
	t := &table{header: []string{"app", "feature", "subset", "ρ", "fit slope", "N"}}
	for _, row := range r.Rows {
		t.add(row.App, row.Feature, row.Subset, f3(row.Pearson),
			fmt.Sprintf("%.3g s/unit", row.FitSlope), fmt.Sprintf("%d", row.N))
	}
	return "Fig 5 — application features vs service time (with LR fit)\n" + t.String()
}

// ---------------------------------------------------------------------------
// Fig 6 — timeliness of application features (lateness).

// Fig6Row records one application feature's lateness.
type Fig6Row struct {
	App      string
	Feature  string
	Lateness float64
	Usable   bool // under the 0.5 threshold
}

// Fig6Result reproduces Fig 6's timeliness observation.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 tabulates the lateness of every application feature in the suite.
func Fig6(cfg Config) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, app := range workload.All() {
		for _, s := range app.FeatureSpecs() {
			if s.Lateness == 0 {
				continue
			}
			res.Rows = append(res.Rows, Fig6Row{
				App: app.Name(), Feature: s.Name,
				Lateness: s.Lateness, Usable: s.Lateness <= 0.5,
			})
		}
	}
	return res, nil
}

// Render prints the lateness table.
func (r *Fig6Result) Render() string {
	t := &table{header: []string{"app", "application feature", "lateness", "usable (≤0.5)?"}}
	for _, row := range r.Rows {
		use := "yes"
		if !row.Usable {
			use = "NO — rejected"
		}
		t.add(row.App, row.Feature, f2(row.Lateness), use)
	}
	return "Fig 6 — application feature timeliness\n" + t.String()
}

// renderCDF is a small ASCII sparkline for CDFs in verbose output.
func renderCDF(pts []stats.CDFPoint, width int) string {
	if len(pts) == 0 {
		return ""
	}
	var b strings.Builder
	lo, hi := pts[0].Value, pts[len(pts)-1].Value
	if hi == lo {
		hi = lo + 1
	}
	marks := " .:-=+*#%@"
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*float64(i)/float64(width-1)
		frac := 0.0
		for _, p := range pts {
			if p.Value <= x {
				frac = p.Fraction
			}
		}
		b.WriteByte(marks[int(frac*float64(len(marks)-1))])
	}
	return b.String()
}
