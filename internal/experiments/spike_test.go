package experiments

import (
	"strings"
	"testing"
)

func TestLoadSpikeUnknownApp(t *testing.T) {
	if _, err := LoadSpike(quickCfg(), "nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// §VI-C's emergency claim: under a sudden overload, the 100 ms monitor
// drives QoS′ from 100% to near 0% of QoS within 2 s, running everything
// at max frequency until the load recovers — after which the tail is back
// under QoS.
func TestLoadSpikeCollapseWithinTwoSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("spike timeline is slow")
	}
	res, err := LoadSpike(quickCfg(), "xapian")
	if err != nil {
		t.Fatal(err)
	}
	if res.CollapseSeconds < 0 {
		t.Fatal("QoS′ never collapsed under a 3× overload")
	}
	if res.CollapseSeconds > 2.0 {
		t.Errorf("QoS′ collapse took %.1fs, paper claims ≤ 2s", res.CollapseSeconds)
	}
	if !res.PostSpikeTailOK {
		t.Error("tail did not return under QoS after the spike")
	}
	// QoS′ recovered off the floor once the spike passed.
	if float64(res.RecoveredQoSPrime) <= 0.10*8e-3 {
		t.Errorf("QoS′ stuck at the floor after recovery: %v", res.RecoveredQoSPrime)
	}
	if !strings.Contains(res.Render(), "Load spike") {
		t.Fatal("render")
	}
}
