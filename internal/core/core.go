// Package core is the public face of the ReTail reproduction: it wires the
// substrates together into the paper's pipeline —
//
//	calibrate (profile requests per frequency, §V-C)
//	  → select features (§IV)
//	  → fit the per-(category × frequency) linear predictor (§V)
//	  → attach a power manager to a simulated server (§VI)
//	  → run measured experiments (§VII)
//
// Use Calibrate to produce a Calibration for an application on a platform,
// its New* methods to construct ReTail and the baselines, and Run to
// execute a measured simulation and collect power/latency results.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"retail/internal/cpu"
	"retail/internal/features"
	"retail/internal/manager"
	"retail/internal/nn"
	"retail/internal/policy"
	"retail/internal/predict"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/stats"
	"retail/internal/workload"
)

// Platform describes the simulated server hardware.
type Platform struct {
	Grid    *cpu.Grid
	Power   cpu.PowerModel
	Trans   cpu.TransitionModel
	Workers int
	Seed    int64
}

// DefaultPlatform mirrors the paper's testbed shape: 20 worker cores (one
// socket minus the OS and power-manager cores), 1.0–2.1 GHz DVFS.
func DefaultPlatform() Platform {
	g := cpu.DefaultGrid()
	return Platform{
		Grid:    g,
		Power:   cpu.DefaultPowerModel(g),
		Trans:   cpu.DefaultTransitionModel(),
		Workers: 20,
		Seed:    1,
	}
}

// WithWorkers returns a copy sized to n workers (tests use smaller pools).
func (p Platform) WithWorkers(n int) Platform {
	p.Workers = n
	return p
}

// Calibration is the per-application artifact of the paper's online
// training protocol: the selected features, the fitted linear model, the
// training set that keeps absorbing live samples, and the raw profile the
// baselines need.
type Calibration struct {
	App      workload.App
	Platform Platform

	Selection features.Result
	Layout    predict.FeatureLayout
	Training  *predict.TrainingSet
	Model     *predict.LinearModel

	// BaselineRMSEOverQoS is the healthy-state prediction error, the drift
	// detector's reference point.
	BaselineRMSEOverQoS float64
	// ProfileAtMax holds service times at max frequency for Rubik's
	// offline distribution and Adrenaline's thresholds.
	ProfileAtMax []float64
	// profileFeatures aligns with ProfileAtMax for threshold derivation.
	profileFeatures [][]float64
	// geminiModel memoizes the trained Gemini network.
	geminiModel *predict.NNModel
}

// Calibrate profiles samplesPerLevel requests at every frequency level (the
// paper's protocol: start at the lowest setting and step up, 1000 requests
// each), runs feature selection on the max-frequency profile, and fits the
// linear model.
func Calibrate(app workload.App, p Platform, samplesPerLevel int, seed int64) (*Calibration, error) {
	if samplesPerLevel <= 0 {
		samplesPerLevel = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	set := predict.NewTrainingSet(samplesPerLevel)
	cal := &Calibration{App: app, Platform: p, Training: set}
	ds := features.Dataset{Specs: app.FeatureSpecs()}
	// Non-max levels only feed TrainingSet.Add, which copies Features, so
	// one scratch request can host every draw there. The max level's
	// requests are retained below (ds.X, profileFeatures) and must stay
	// freshly allocated. GenerateInto consumes the RNG identically to
	// Generate, so the calibration draw is unchanged either way.
	ip, hasIP := app.(workload.InPlaceGenerator)
	var scratch workload.Request
	for lvl := cpu.Level(0); int(lvl) < p.Grid.Levels(); lvl++ {
		f := p.Grid.Freq(lvl)
		for i := 0; i < samplesPerLevel; i++ {
			var r *workload.Request
			if hasIP && lvl != p.Grid.MaxLevel() {
				ip.GenerateInto(&scratch, rng)
				r = &scratch
			} else {
				r = app.Generate(rng)
			}
			svc := float64(r.ServiceAt(f, p.Grid.MaxFreq(), 1))
			set.Add(predict.Sample{Level: lvl, Features: r.Features, Service: svc})
			if lvl == p.Grid.MaxLevel() {
				ds.X = append(ds.X, r.Features)
				ds.Service = append(ds.Service, svc)
				cal.ProfileAtMax = append(cal.ProfileAtMax, svc)
				cal.profileFeatures = append(cal.profileFeatures, r.Features)
			}
		}
	}
	sel, err := features.Select(ds, features.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("core: feature selection: %w", err)
	}
	cal.Selection = sel
	cal.Layout = predict.FeatureLayout{Specs: app.FeatureSpecs(), Selected: sel.Selected}
	model, err := predict.FitLinear(set, cal.Layout, p.Grid.Levels())
	if err != nil {
		return nil, fmt.Errorf("core: initial fit: %w", err)
	}
	cal.Model = model
	if met, err := predict.Evaluate(model, set.All()); err == nil {
		cal.BaselineRMSEOverQoS = met.RMSE / float64(app.QoS().Latency)
	}
	return cal, nil
}

// requestFeatureIndices returns the indices of lateness-zero features.
func (c *Calibration) requestFeatureIndices() []int {
	var idx []int
	for j, s := range c.App.FeatureSpecs() {
		if s.RequestFeature() {
			idx = append(idx, j)
		}
	}
	return idx
}

// NewReTail constructs the ReTail manager from this calibration.
func (c *Calibration) NewReTail() *manager.ReTail {
	return c.NewReTailParams(policy.Params{})
}

// NewReTailParams constructs the ReTail manager under a serializable
// policy parameterization (the zero value keeps every historical
// constant — NewReTail is exactly this with empty params).
func (c *Calibration) NewReTailParams(p policy.Params) *manager.ReTail {
	cfg := manager.DefaultReTailConfig()
	cfg.Layout = c.Layout
	cfg.Model = c.Model
	// Each manager instance gets its own copy of the training rings so
	// live samples from one run never leak into another.
	cfg.Training = c.Training.Clone()
	cfg.Stage1Frac = c.Stage1Frac()
	cfg.Params = p
	m := manager.NewReTail(c.App.QoS(), cfg)
	m.SetDriftBaseline(c.BaselineRMSEOverQoS)
	return m
}

// NewReTailWith constructs the ReTail manager with a substitute predictor
// wrapped around (or replacing) the calibrated model — the chaos runner
// uses this to interpose fault.CorruptingPredictor without the manager
// package learning about fault injection.
func (c *Calibration) NewReTailWith(model predict.Predictor) *manager.ReTail {
	cfg := manager.DefaultReTailConfig()
	cfg.Layout = c.Layout
	cfg.Model = model
	cfg.Training = c.Training.Clone()
	cfg.Stage1Frac = c.Stage1Frac()
	m := manager.NewReTail(c.App.QoS(), cfg)
	m.SetDriftBaseline(c.BaselineRMSEOverQoS)
	return m
}

// Stage1Frac derives the per-request feature-extraction split point: the
// max lateness among selected application features that actually vary
// within the request's category (a PAYMENT transaction does not wait for
// STOCK_LEVEL's distinct-item count). Returns nil when no application
// feature was selected.
func (c *Calibration) Stage1Frac() func(*workload.Request) float64 {
	specs := c.App.FeatureSpecs()
	var appFeats []int // selected features with lateness > 0
	for _, j := range c.Selection.Selected {
		if specs[j].Lateness > 0 {
			appFeats = append(appFeats, j)
		}
	}
	if len(appFeats) == 0 {
		return nil
	}
	var catReq []int // selected categorical request features
	for _, j := range c.Selection.Selected {
		if specs[j].Kind == workload.Categorical && specs[j].RequestFeature() {
			catReq = append(catReq, j)
		}
	}
	globalMax := 0.0
	for _, j := range appFeats {
		if specs[j].Lateness > globalMax {
			globalMax = specs[j].Lateness
		}
	}
	if len(catReq) == 0 {
		gm := globalMax
		return func(*workload.Request) float64 { return gm }
	}
	// Which application features vary within each request-visible
	// category combination?
	key := func(row []float64) string {
		b := make([]byte, 0, len(catReq)*2)
		for _, j := range catReq {
			v := int(row[j])
			b = append(b, byte(v), byte(v>>8), ',')
		}
		return string(b)
	}
	type extreme struct{ min, max []float64 }
	seen := map[string]*extreme{}
	for _, row := range c.profileFeatures {
		k := key(row)
		ex := seen[k]
		if ex == nil {
			ex = &extreme{min: make([]float64, len(appFeats)), max: make([]float64, len(appFeats))}
			for a, j := range appFeats {
				ex.min[a], ex.max[a] = row[j], row[j]
			}
			seen[k] = ex
			continue
		}
		for a, j := range appFeats {
			if row[j] < ex.min[a] {
				ex.min[a] = row[j]
			}
			if row[j] > ex.max[a] {
				ex.max[a] = row[j]
			}
		}
	}
	lateByCombo := map[string]float64{}
	for k, ex := range seen {
		late := 0.0
		for a, j := range appFeats {
			if ex.max[a] > ex.min[a] && specs[j].Lateness > late {
				late = specs[j].Lateness
			}
		}
		lateByCombo[k] = late
	}
	gm := globalMax
	return func(r *workload.Request) float64 {
		if late, ok := lateByCombo[key(r.Features)]; ok {
			return late
		}
		return gm // unseen combination: be conservative
	}
}

// NewRubik constructs the Rubik baseline from the offline profile.
func (c *Calibration) NewRubik() *manager.Rubik {
	return c.NewRubikParams(policy.Params{})
}

// NewRubikParams constructs the Rubik baseline under a serializable
// policy parameterization (zero value = the historical 0.999 quantile).
func (c *Calibration) NewRubikParams(p policy.Params) *manager.Rubik {
	m := manager.NewRubik(c.App.QoS(), c.ProfileAtMax)
	m.TailQuantile = p.Rubik.QuantileOr(0.999)
	return m
}

// GeminiModel trains (once, memoized) Gemini's network on request-arrival
// features at max frequency. The structure defaults to Gemini's published
// 5×128 when cfg is nil; the first call's configuration wins.
func (c *Calibration) GeminiModel(cfg *nn.Config) (*predict.NNModel, error) {
	if c.geminiModel != nil {
		return c.geminiModel, nil
	}
	inputs := c.requestFeatureIndices()
	if len(inputs) == 0 {
		// Degenerate: no request features at all; feed the first feature
		// (as zeros at inference time) so the model predicts a constant.
		inputs = []int{0}
	}
	nncfg := nn.GeminiConfig(len(inputs))
	if cfg != nil {
		nncfg = *cfg
		nncfg.InputDim = len(inputs)
	}
	model, err := predict.FitNN(c.Training, c.Platform.Grid, nncfg, c.Platform.Grid.MaxLevel(), inputs)
	if err != nil {
		return nil, fmt.Errorf("core: gemini NN fit: %w", err)
	}
	c.geminiModel = model
	return model, nil
}

// NewGemini wraps the (memoized) Gemini network in the two-step-DVFS,
// request-dropping manager.
func (c *Calibration) NewGemini(cfg *nn.Config) (*manager.Gemini, error) {
	return c.NewGeminiParams(cfg, policy.Params{})
}

// NewGeminiParams is NewGemini under a serializable policy
// parameterization (zero value = the historical 0.8 boost checkpoint
// with drop-on-predicted-miss on).
func (c *Calibration) NewGeminiParams(cfg *nn.Config, p policy.Params) (*manager.Gemini, error) {
	model, err := c.GeminiModel(cfg)
	if err != nil {
		return nil, err
	}
	gcfg := manager.DefaultGeminiConfig(model)
	gcfg = ApplyGeminiParams(gcfg, p)
	return manager.NewGemini(c.App.QoS(), c.App.FeatureSpecs(), gcfg), nil
}

// ApplyGeminiParams overlays the serializable Gemini posture knobs onto
// a (possibly shared-model) GeminiConfig. Exported because the fleet
// runtime clones per-node managers from a trained prototype's config and
// must apply the same overlay.
func ApplyGeminiParams(gcfg manager.GeminiConfig, p policy.Params) manager.GeminiConfig {
	gcfg.BoostFrac = p.Gemini.BoostFracOr(gcfg.BoostFrac)
	if p.Gemini.KeepOnPredictedMiss {
		gcfg.DropOnPredictedMiss = false
	}
	return gcfg
}

// NewAdrenaline derives the classification baseline: the request feature
// with the highest standalone correlation degree becomes the classifier.
func (c *Calibration) NewAdrenaline() *manager.Adrenaline {
	best, bestCD := -1, 0.0
	for _, j := range c.requestFeatureIndices() {
		cd := c.Selection.IndividualCD[j]
		if cd == cd && cd > bestCD { // cd == cd filters NaN
			best, bestCD = j, cd
		}
	}
	var vals []float64
	if best >= 0 {
		for _, row := range c.profileFeatures {
			vals = append(vals, row[best])
		}
	}
	return manager.NewAdrenaline(c.App.QoS(), c.Platform.Grid, best, vals, c.ProfileAtMax)
}

// NewManagerParams constructs one of the four managed DVFS policies by
// name under a serializable policy parameterization — the single
// construction path the fleet and the tuner share, so "policy × params"
// means the same thing everywhere. gemNN only matters for "gemini"
// (nil = the published structure).
func (c *Calibration) NewManagerParams(name string, gemNN *nn.Config, p policy.Params) (manager.Manager, error) {
	switch name {
	case "retail":
		return c.NewReTailParams(p), nil
	case "rubik":
		return c.NewRubikParams(p), nil
	case "gemini":
		return c.NewGeminiParams(gemNN, p)
	case "eetl":
		return c.NewEETLParams(p), nil
	}
	return nil, fmt.Errorf("core: unknown managed policy %q (have retail, rubik, gemini, eetl)", name)
}

// NewPegasus constructs the coarse-grained controller.
func (c *Calibration) NewPegasus() *manager.Pegasus { return manager.NewPegasus(c.App.QoS()) }

// NewMaxFreq constructs the unmanaged baseline.
func (c *Calibration) NewMaxFreq() *manager.MaxFreq { return manager.NewMaxFreq() }

var maxLoadCache sync.Map // "app/workers" → float64 RPS

// CalibrateMaxLoad finds the application's "100% load" as the paper
// defines it: the maximum request rate at which the *default system* (all
// cores at max frequency, no management) still meets QoS. It binary
// searches over RPS with short measured runs and memoizes per
// (application, worker count).
func CalibrateMaxLoad(app workload.App, p Platform, seed int64) float64 {
	key := fmt.Sprintf("%s/%d", app.Name(), p.Workers)
	if v, ok := maxLoadCache.Load(key); ok {
		return v.(float64)
	}
	mean := workload.MeanServiceAtMax(app)
	// The search is capped at 80% utilization: the paper reports that 100%
	// of max load corresponds to 60–80% CPU utilization for these
	// open-loop workloads.
	lo, hi := 0.05*float64(p.Workers)/mean, 0.80*float64(p.Workers)/mean
	meets := func(rps float64) bool {
		dur := RecommendedDuration(app, rps)
		res, err := Run(RunConfig{
			App: app, Platform: p, Manager: manager.NewMaxFreq(),
			RPS: rps, Warmup: dur / 5, Duration: dur, Seed: seed,
		})
		if err != nil || res.Completed == 0 {
			return false
		}
		// A guard band keeps "100% load" robust across seeds and longer
		// horizons, where p99 queueing keeps widening.
		return res.TailAtQoSPct <= 0.90*res.QoSTarget
	}
	for i := 0; i < 7; i++ {
		mid := (lo + hi) / 2
		if meets(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	maxLoadCache.Store(key, lo)
	return lo
}

// RecommendedDuration returns a measurement window long enough for a
// stable tail estimate: at least ~4000 completions and many multiples of
// the mean service time, clamped to keep fast apps cheap to simulate.
func RecommendedDuration(app workload.App, rps float64) sim.Duration {
	mean := workload.MeanServiceAtMax(app)
	d := sim.Duration(4000 / rps)
	if m := sim.Duration(60 * mean); m > d {
		d = m
	}
	if d < 5 {
		d = 5
	}
	if d > 600 {
		d = 600
	}
	return d
}

// RunConfig describes one measured simulation.
type RunConfig struct {
	App      workload.App
	Platform Platform
	Manager  manager.Manager
	RPS      float64
	Warmup   sim.Duration // excluded from all measurements
	Duration sim.Duration // measurement window
	Seed     int64
	// Spec, when non-nil, replaces the single Poisson generator with the
	// spec's full client population (cohorts × arrival processes ×
	// envelopes; see workload.Spec). The spec must be single-app and match
	// App. RPS > 0 rescales the spec's aggregate rate (ScaledTo); RPS 0
	// runs the spec's own rates. The spec's class table installs per-SLO-
	// class QoS′ targets on any manager exposing SetClassTargets.
	Spec *workload.Spec
	// Record, when non-nil, taps every generated arrival into the trace
	// (workload.Trace.RecordSink) on its way to the server — warmup
	// included, so a replayed trace reproduces the whole run.
	Record *workload.Trace
	// Replay, when non-nil, substitutes the recorded stream for any
	// generator: arrivals, features and service demands come from the
	// trace bit-for-bit and no workload RNG is consumed. Mutually
	// exclusive with Spec; the trace's class table installs per-SLO-class
	// targets exactly as a spec's would.
	Replay *workload.Trace
	// CollectSamples retains per-request (level, features, service)
	// samples from the measurement window for offline RMSE evaluation.
	CollectSamples bool
	// Events, when non-nil, is invoked once at every listed time (after
	// warmup offset is NOT applied; times are absolute virtual times).
	Events []TimedEvent
	// Instrument, when non-nil, runs after the manager is attached and
	// before load starts — the place to chain observers (trace flight
	// recorders, telemetry hook adapters) around the manager's hooks
	// without core depending on the observer packages.
	Instrument func(e *sim.Engine, s *server.Server)
}

// TimedEvent triggers arbitrary environment changes mid-run (interference,
// load steps).
type TimedEvent struct {
	At sim.Time
	Do func(e *sim.Engine, s *server.Server)
}

// Result aggregates a run's measurements over the window.
type Result struct {
	Manager   string
	App       string
	RPS       float64
	AvgPowerW float64
	EnergyJ   float64

	Completed int
	Dropped   int // within the measurement window
	// Violations counts measured completions whose sojourn exceeded the
	// QoS latency. The QoS verdict is about the tail percentile; this is
	// the raw per-request count the tuner's scoring penalizes.
	Violations int

	MeanLatency  float64 // seconds, sojourn
	P50, P95     float64
	P99          float64
	TailAtQoSPct float64 // measured tail at the app's QoS percentile
	QoSTarget    float64
	QoSMet       bool

	Transitions int
	Samples     []predict.Sample // when CollectSamples

	// Classes breaks the window down per SLO class when the run was
	// driven by a cohort spec or a recorded trace with a class table
	// (nil otherwise). Order follows the spec's class table.
	Classes []ClassResult
}

// ClassResult is one SLO class's slice of the measurement window. The
// quantiles come from a stats.HDR histogram over nanosecond sojourns
// (≤1.6% relative bucket error), so per-class reporting stays O(1) per
// completion regardless of how skewed the class mix is.
type ClassResult struct {
	Class     string  // class name from the spec/trace table
	QoSScale  float64 // the class's QoS′ multiplier
	Completed int
	Dropped   int

	P50, P95, P99 float64 // seconds
	TailAtQoSPct  float64 // tail at the app's QoS percentile
	QoSTarget     float64 // QoSScale × the app's QoS latency
	QoSMet        bool
}

// Run executes warmup + measurement and returns the aggregated result.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.App == nil || cfg.Manager == nil {
		return nil, fmt.Errorf("core: RunConfig needs App and Manager")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("core: RunConfig needs positive Duration")
	}
	if cfg.RPS <= 0 && cfg.Spec == nil && cfg.Replay == nil {
		return nil, fmt.Errorf("core: RunConfig needs positive RPS (or a Spec/Replay source)")
	}
	if cfg.Spec != nil && cfg.Replay != nil {
		return nil, fmt.Errorf("core: Spec and Replay are mutually exclusive")
	}
	// The workload source's class table, when present, drives per-class
	// QoS′ targets and per-class reporting.
	var classNames []string
	var classScales []float64
	switch {
	case cfg.Replay != nil:
		apps := cfg.Replay.Header.Apps
		if len(apps) != 1 || apps[0] != cfg.App.Name() {
			return nil, fmt.Errorf("core: replay trace apps %v do not match app %q", apps, cfg.App.Name())
		}
		classNames, classScales = cfg.Replay.Header.Classes, cfg.Replay.Header.Scales
	case cfg.Spec != nil:
		specApp, err := cfg.Spec.SingleApp()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if specApp.Name() != cfg.App.Name() {
			return nil, fmt.Errorf("core: spec %q targets app %q, run configured for %q", cfg.Spec.Name, specApp.Name(), cfg.App.Name())
		}
		classNames, classScales = cfg.Spec.Classes()
	}
	if len(classScales) > 0 {
		if ct, ok := cfg.Manager.(interface{ SetClassTargets(policy.ClassTargets) }); ok {
			ct.SetClassTargets(policy.NewClassTargets(classScales))
		}
	}
	e := sim.NewEngine()
	srv := server.New(server.Config{
		App:     cfg.App,
		Workers: cfg.Platform.Workers,
		Grid:    cfg.Platform.Grid,
		Power:   cfg.Platform.Power,
		Trans:   cfg.Platform.Trans,
		Seed:    cfg.Platform.Seed ^ cfg.Seed,
	})
	cfg.Manager.Attach(e, srv)
	if cfg.Instrument != nil {
		cfg.Instrument(e, srv)
	}

	qos := cfg.App.QoS()
	lat := stats.NewLatencyTracker(0, true)
	measuring := false
	var samples []predict.Sample
	droppedInWindow := 0
	// Per-class histograms: HDR over nanosecond sojourns, one per class
	// table entry.
	var classHist []*stats.HDR
	var classDropped []int
	if len(classNames) > 0 {
		classHist = make([]*stats.HDR, len(classNames))
		for i := range classHist {
			classHist[i] = &stats.HDR{}
		}
		classDropped = make([]int, len(classNames))
	}
	violations := 0
	srv.CompletedSink = func(en *sim.Engine, r *workload.Request) {
		if !measuring {
			return
		}
		lat.Add(float64(r.Sojourn()))
		if r.Sojourn() > qos.Latency {
			violations++
		}
		if c := int(r.SLOClass); c < len(classHist) {
			classHist[c].Record(int64(float64(r.Sojourn()) * 1e9))
		}
		if cfg.CollectSamples {
			samples = append(samples, predict.Sample{
				Level:    cpu.Level(r.ServedLevel),
				Features: r.Features,
				Service:  float64(r.ServiceTime()),
			})
		}
	}
	srv.DroppedSink = func(en *sim.Engine, r *workload.Request) {
		if !measuring {
			return
		}
		droppedInWindow++
		if c := int(r.SLOClass); c < len(classDropped) {
			classDropped[c]++
		}
	}

	sink := srv.Submit
	if cfg.Record != nil {
		sink = cfg.Record.RecordSink(sink)
	}
	rps := cfg.RPS
	var stopGen func()
	switch {
	case cfg.Replay != nil:
		pl := workload.NewPlayer(cfg.Replay, sink)
		pl.Start(e)
		stopGen = pl.Stop
		if rps <= 0 && cfg.Duration > 0 {
			rps = float64(len(cfg.Replay.Records)) / float64(cfg.Warmup+cfg.Duration)
		}
	case cfg.Spec != nil:
		spec := cfg.Spec
		if cfg.RPS > 0 {
			spec = spec.ScaledTo(cfg.RPS)
		}
		cg := workload.NewCohortGenerator(spec, cfg.Seed, sink)
		cg.Start(e)
		stopGen = cg.Stop
		rps = spec.TotalRPS()
	default:
		gen := workload.NewGenerator(cfg.App, cfg.RPS, cfg.Seed, sink)
		gen.Start(e)
		stopGen = gen.Stop
	}
	for _, ev := range cfg.Events {
		ev := ev
		e.At(ev.At, "core.event", func(en *sim.Engine) { ev.Do(en, srv) })
	}
	e.At(cfg.Warmup, "core.measure", func(en *sim.Engine) {
		measuring = true
		srv.Socket.ResetEnergy(en.Now())
	})
	end := cfg.Warmup + cfg.Duration
	e.Run(end)
	stopGen()

	res := &Result{
		Manager:     cfg.Manager.Name(),
		App:         cfg.App.Name(),
		RPS:         rps,
		AvgPowerW:   srv.Socket.AveragePowerW(end),
		EnergyJ:     srv.Socket.EnergyJoules(end),
		Completed:   lat.Count(),
		Dropped:     droppedInWindow,
		Violations:  violations,
		QoSTarget:   float64(qos.Latency),
		Transitions: srv.Socket.Transitions(),
		Samples:     samples,
	}
	if lat.Count() > 0 {
		qs := lat.Quantiles(0.50, 0.95, 0.99, qos.Percentile/100)
		res.P50, res.P95, res.P99, res.TailAtQoSPct = qs[0], qs[1], qs[2], qs[3]
		res.MeanLatency = lat.Mean()
		res.QoSMet = res.TailAtQoSPct <= res.QoSTarget
	}
	for i, h := range classHist {
		scale := 1.0
		if i < len(classScales) {
			scale = classScales[i]
		}
		cr := ClassResult{
			Class:     classNames[i],
			QoSScale:  scale,
			Completed: int(h.Count()),
			Dropped:   classDropped[i],
			QoSTarget: scale * float64(qos.Latency),
		}
		if h.Count() > 0 {
			const ns = 1e-9
			cr.P50 = float64(h.Quantile(0.50)) * ns
			cr.P95 = float64(h.Quantile(0.95)) * ns
			cr.P99 = float64(h.Quantile(0.99)) * ns
			cr.TailAtQoSPct = float64(h.Quantile(qos.Percentile/100)) * ns
			cr.QoSMet = cr.TailAtQoSPct <= cr.QoSTarget
		}
		res.Classes = append(res.Classes, cr)
	}
	return res, nil
}

// DropRate returns dropped/(dropped+completed) over the window.
func (r *Result) DropRate() float64 {
	total := r.Dropped + r.Completed
	if total == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(total)
}

// NewEETL constructs the progress-threshold baseline (related work §II)
// from the offline profile.
func (c *Calibration) NewEETL() *manager.EETL {
	return c.NewEETLParams(policy.Params{})
}

// NewEETLParams constructs the EETL baseline under a serializable policy
// parameterization (zero value = the historical 0.75 quantile at slow
// level MaxLevel/2).
func (c *Calibration) NewEETLParams(p policy.Params) *manager.EETL {
	grid := c.Platform.Grid
	slow := cpu.Level(p.EETL.SlowLevel(int(grid.MaxLevel())))
	return manager.NewEETLAt(c.App.QoS(), grid, c.ProfileAtMax, p.EETL.QuantileOr(0.75), slow)
}
