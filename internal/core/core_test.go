package core

import (
	"math"
	"testing"

	"retail/internal/manager"
	"retail/internal/nn"
	"retail/internal/predict"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/workload"
)

func testPlatform() Platform { return DefaultPlatform().WithWorkers(8) }

func calibrateOrDie(t *testing.T, name string) *Calibration {
	t.Helper()
	cal, err := Calibrate(workload.ByName(name), testPlatform(), 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateSelectsExpectedFeatures(t *testing.T) {
	want := map[string][]string{
		"moses":    {"word_count"},
		"sphinx":   {"audio_mb"},
		"xapian":   {"doc_count"},
		"masstree": {},
		"imgdnn":   {},
	}
	for name, feats := range want {
		cal := calibrateOrDie(t, name)
		specs := cal.App.FeatureSpecs()
		got := map[string]bool{}
		for _, j := range cal.Selection.Selected {
			got[specs[j].Name] = true
		}
		if len(got) != len(feats) {
			t.Errorf("%s: selected %v, want %v", name, got, feats)
			continue
		}
		for _, f := range feats {
			if !got[f] {
				t.Errorf("%s: missing feature %s", name, f)
			}
		}
	}
}

func TestCalibrateOLTPSelectsCombinational(t *testing.T) {
	for _, name := range []string{"shore", "silo"} {
		cal := calibrateOrDie(t, name)
		specs := cal.App.FeatureSpecs()
		names := map[string]bool{}
		for _, j := range cal.Selection.Selected {
			names[specs[j].Name] = true
		}
		if !names["tx_type"] {
			t.Errorf("%s: tx_type not selected: %v", name, names)
		}
		if !names["item_count"] && !names["distinct_items"] {
			t.Errorf("%s: no numerical feature selected: %v", name, names)
		}
	}
}

func TestCalibrateModelAccuracy(t *testing.T) {
	// The calibrated model's RMSE/QoS should land in the paper's Table IV
	// ballpark (a few percent).
	for _, name := range []string{"moses", "xapian", "sphinx", "shore"} {
		cal := calibrateOrDie(t, name)
		if cal.BaselineRMSEOverQoS <= 0 || cal.BaselineRMSEOverQoS > 0.10 {
			t.Errorf("%s: baseline RMSE/QoS = %v, want (0, 0.10]", name, cal.BaselineRMSEOverQoS)
		}
	}
}

func TestCalibrateProfileSize(t *testing.T) {
	cal := calibrateOrDie(t, "moses")
	if len(cal.ProfileAtMax) != 400 {
		t.Fatalf("profile size = %d, want 400 (one per max-level sample)", len(cal.ProfileAtMax))
	}
	if cal.Training.Total() != 400*12 {
		t.Fatalf("training total = %d, want 4800", cal.Training.Total())
	}
}

func TestStage1FracPerCategory(t *testing.T) {
	cal := calibrateOrDie(t, "shore")
	frac := cal.Stage1Frac()
	if frac == nil {
		t.Fatal("shore needs a stage-1 split")
	}
	mk := func(tx int, items, rollback, distinct float64) *workload.Request {
		return &workload.Request{Features: []float64{float64(tx), items, rollback, distinct}}
	}
	// PAYMENT and ORDER_STATUS never wait for application features.
	if got := frac(mk(workload.TxPayment, 0, 0, 0)); got != 0 {
		t.Fatalf("PAYMENT stage-1 frac = %v, want 0", got)
	}
	if got := frac(mk(workload.TxOrderStatus, 0, 0, 0)); got != 0 {
		t.Fatalf("ORDER_STATUS stage-1 frac = %v, want 0", got)
	}
	// NEW_ORDER waits for the rollback flag (lateness 0.08) only when
	// stepwise selection picked it up — at TPC-C's 1% rollback rate the
	// correlation-degree gain is usually below the redundancy threshold,
	// so 0 is equally valid.
	if got := frac(mk(workload.TxNewOrder, 10, 0, 0)); got != 0 && math.Abs(got-0.08) > 1e-12 {
		t.Fatalf("NEW_ORDER stage-1 frac = %v, want 0 or 0.08", got)
	}
	// STOCK_LEVEL needs the distinct-item count (lateness 0.30).
	if got := frac(mk(workload.TxStockLevel, 0, 0, 150)); math.Abs(got-0.30) > 1e-12 {
		t.Fatalf("STOCK_LEVEL stage-1 frac = %v, want 0.30", got)
	}
}

func TestStage1FracXapianGlobal(t *testing.T) {
	cal := calibrateOrDie(t, "xapian")
	frac := cal.Stage1Frac()
	if frac == nil {
		t.Fatal("xapian needs a stage-1 split")
	}
	r := &workload.Request{Features: []float64{10, 100, 9600}}
	if got := frac(r); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("xapian stage-1 frac = %v, want 0.05 (doc_count lateness)", got)
	}
}

func TestStage1FracNilForRequestFeatureApps(t *testing.T) {
	for _, name := range []string{"moses", "sphinx", "masstree", "imgdnn"} {
		cal := calibrateOrDie(t, name)
		if cal.Stage1Frac() != nil {
			t.Errorf("%s: unexpected stage-1 split for request-feature app", name)
		}
	}
}

func TestRunValidation(t *testing.T) {
	p := testPlatform()
	cal := calibrateOrDie(t, "imgdnn")
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(RunConfig{App: cal.App, Platform: p, Manager: cal.NewMaxFreq()}); err == nil {
		t.Fatal("zero RPS accepted")
	}
}

func TestRunBasicAccounting(t *testing.T) {
	p := testPlatform()
	cal := calibrateOrDie(t, "imgdnn")
	res, err := Run(RunConfig{
		App: cal.App, Platform: p, Manager: cal.NewMaxFreq(),
		RPS: 1000, Warmup: 1, Duration: 4, Seed: 5, CollectSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 3500 || res.Completed > 4500 {
		t.Fatalf("completed = %d over 4s at 1000 RPS", res.Completed)
	}
	if res.AvgPowerW <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("power accounting: %v W, %v J", res.AvgPowerW, res.EnergyJ)
	}
	if math.Abs(res.EnergyJ/res.AvgPowerW-4) > 1e-6 {
		t.Fatalf("energy %v J inconsistent with power %v W over 4s", res.EnergyJ, res.AvgPowerW)
	}
	if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 {
		t.Fatalf("percentiles disordered: %v %v %v", res.P50, res.P95, res.P99)
	}
	if !res.QoSMet {
		t.Fatal("max frequency at moderate load must meet QoS")
	}
	if len(res.Samples) != res.Completed {
		t.Fatalf("samples %d ≠ completed %d", len(res.Samples), res.Completed)
	}
	if res.DropRate() != 0 {
		t.Fatalf("drop rate = %v for MaxFreq", res.DropRate())
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	p := testPlatform()
	cal := calibrateOrDie(t, "xapian")
	run := func() *Result {
		res, err := Run(RunConfig{
			App: cal.App, Platform: p, Manager: cal.NewRubik(),
			RPS: 800, Warmup: 1, Duration: 3, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AvgPowerW != b.AvgPowerW || a.P99 != b.P99 || a.Completed != b.Completed {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestRunEvents(t *testing.T) {
	p := testPlatform()
	cal := calibrateOrDie(t, "imgdnn")
	fired := false
	_, err := Run(RunConfig{
		App: cal.App, Platform: p, Manager: cal.NewMaxFreq(),
		RPS: 500, Warmup: 0.5, Duration: 2, Seed: 3,
		Events: []TimedEvent{{At: 1, Do: func(e *sim.Engine, s *server.Server) { fired = true }}},
	})
	_ = err
	if !fired {
		t.Fatal("timed event did not fire")
	}
}

func TestCalibrateMaxLoadCachedAndSane(t *testing.T) {
	p := testPlatform()
	app := workload.ByName("imgdnn")
	a := CalibrateMaxLoad(app, p, 3)
	b := CalibrateMaxLoad(app, p, 99) // cached: seed ignored on second call
	if a != b {
		t.Fatalf("max load not memoized: %v vs %v", a, b)
	}
	util := a * workload.MeanServiceAtMax(app) / float64(p.Workers)
	if util < 0.3 || util > 0.82 {
		t.Fatalf("max-load utilization = %v, want the paper's 60–80%% band (≤0.82)", util)
	}
	// The default system must meet QoS at 100% load by construction.
	res, err := Run(RunConfig{
		App: app, Platform: p, Manager: manager.NewMaxFreq(),
		RPS: a, Warmup: 1, Duration: RecommendedDuration(app, a), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMet {
		t.Fatalf("default system violates QoS at its own max load: p%g=%v target=%v",
			app.QoS().Percentile, res.TailAtQoSPct, res.QoSTarget)
	}
}

func TestRecommendedDuration(t *testing.T) {
	sphinx := workload.ByName("sphinx")
	fast := workload.ByName("silo")
	if d := RecommendedDuration(fast, 30000); d != 5 {
		t.Fatalf("fast-app duration = %v, want clamp at 5s", d)
	}
	if d := RecommendedDuration(sphinx, 10); d < 60 {
		t.Fatalf("sphinx duration = %v, want long window", d)
	}
	if d := RecommendedDuration(sphinx, 0.001); d != 600 {
		t.Fatalf("duration cap = %v, want 600", d)
	}
}

func TestNewGeminiAndAdrenalineConstruction(t *testing.T) {
	cal := calibrateOrDie(t, "moses")
	cfg := nn.TunedConfig(1, 1, 8, 10, 32)
	g, err := cal.NewGemini(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "gemini" {
		t.Fatal("gemini name")
	}
	a := cal.NewAdrenaline()
	if a.Name() != "adrenaline" {
		t.Fatal("adrenaline name")
	}
	// Moses' best request feature is word_count (index 1).
	if a.FeatureIdx != workload.FeatureIndex(cal.App, "word_count") {
		t.Fatalf("adrenaline classifies on feature %d", a.FeatureIdx)
	}
	if cal.NewPegasus().Name() != "pegasus" || cal.NewMaxFreq().Name() != "maxfreq" || cal.NewRubik().Name() != "rubik" {
		t.Fatal("factory names")
	}
}

// The headline end-to-end property at 50% load on three representative
// apps: ReTail meets QoS and consumes no more power than the default
// system and no more than Rubik (wide-variation apps).
func TestEndToEndPowerOrdering(t *testing.T) {
	p := testPlatform()
	for _, name := range []string{"moses", "xapian"} {
		cal := calibrateOrDie(t, name)
		rps := CalibrateMaxLoad(cal.App, p, 3) * 0.5
		dur := RecommendedDuration(cal.App, rps)
		run := func(m manager.Manager) *Result {
			res, err := Run(RunConfig{App: cal.App, Platform: p, Manager: m,
				RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		rt := run(cal.NewReTail())
		rb := run(cal.NewRubik())
		mx := run(cal.NewMaxFreq())
		if !rt.QoSMet {
			t.Errorf("%s: ReTail violates QoS (p=%v, target %v)", name, rt.TailAtQoSPct, rt.QoSTarget)
		}
		if rt.AvgPowerW >= mx.AvgPowerW {
			t.Errorf("%s: ReTail %vW ≥ MaxFreq %vW", name, rt.AvgPowerW, mx.AvgPowerW)
		}
		if rt.AvgPowerW > rb.AvgPowerW*1.02 {
			t.Errorf("%s: ReTail %vW > Rubik %vW", name, rt.AvgPowerW, rb.AvgPowerW)
		}
	}
}

func TestEvaluateManagerRMSE(t *testing.T) {
	// Table V methodology: collect run samples and score the predictor.
	p := testPlatform()
	cal := calibrateOrDie(t, "moses")
	rps := CalibrateMaxLoad(cal.App, p, 3) * 0.5
	res, err := Run(RunConfig{App: cal.App, Platform: p, Manager: cal.NewReTail(),
		RPS: rps, Warmup: 2, Duration: 6, Seed: 7, CollectSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	met, err := predict.Evaluate(cal.Model, res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if met.RMSE/res.QoSTarget > 0.15 {
		t.Fatalf("live RMSE/QoS = %v", met.RMSE/res.QoSTarget)
	}
}
