package core_test

import (
	"fmt"
	"log"

	"retail/internal/core"
	"retail/internal/workload"
)

// ExampleCalibrate shows the calibration pipeline: profile, select
// features, fit the per-frequency linear model.
func ExampleCalibrate() {
	app := workload.NewMoses()
	platform := core.DefaultPlatform().WithWorkers(4)
	cal, err := core.Calibrate(app, platform, 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	specs := app.FeatureSpecs()
	for _, j := range cal.Selection.Selected {
		fmt.Println("selected:", specs[j].Name)
	}
	fmt.Printf("combined CD > 0.99: %v\n", cal.Selection.CombinedCD > 0.99)
	// Output:
	// selected: word_count
	// combined CD > 0.99: true
}

// ExampleRun shows a measured simulation under the ReTail manager.
func ExampleRun() {
	app := workload.NewImgDNN()
	platform := core.DefaultPlatform().WithWorkers(4)
	cal, err := core.Calibrate(app, platform, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(core.RunConfig{
		App:      app,
		Platform: platform,
		Manager:  cal.NewReTail(),
		RPS:      400,
		Warmup:   1,
		Duration: 4,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("manager:", res.Manager)
	fmt.Println("QoS met:", res.QoSMet)
	fmt.Println("dropped:", res.Dropped)
	// Output:
	// manager: retail
	// QoS met: true
	// dropped: 0
}
