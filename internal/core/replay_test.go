package core

import (
	"testing"

	"retail/internal/workload"
)

// The production path: capture a trace from live traffic, build a replay
// workload from it, and run the whole pipeline — feature selection must
// find the same features and ReTail must manage the replayed service
// within QoS at lower power than the default system.
func TestPipelineOnReplayedTrace(t *testing.T) {
	src := workload.NewXapian()
	samples := workload.CaptureReplay(src, 3000, 9)
	app, err := workload.NewReplayApp("xapian-trace", src.QoS(), src.FeatureSpecs(), samples, 0.70)
	if err != nil {
		t.Fatal(err)
	}
	p := testPlatform()
	cal, err := Calibrate(app, p, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := app.FeatureSpecs()
	found := false
	for _, j := range cal.Selection.Selected {
		if specs[j].Name == "doc_count" {
			found = true
		}
	}
	if !found {
		t.Fatalf("replay calibration missed doc_count: %v", cal.Selection.Selected)
	}

	rps := CalibrateMaxLoad(app, p, 3) * 0.6
	dur := RecommendedDuration(app, rps)
	rt, err := Run(RunConfig{App: app, Platform: p, Manager: cal.NewReTail(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := Run(RunConfig{App: app, Platform: p, Manager: cal.NewMaxFreq(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.QoSMet {
		t.Fatalf("ReTail on replay violated QoS: %v vs %v", rt.TailAtQoSPct, rt.QoSTarget)
	}
	if rt.AvgPowerW >= mx.AvgPowerW {
		t.Fatalf("no savings on replay: %v vs %v", rt.AvgPowerW, mx.AvgPowerW)
	}
}
