package sim

import (
	"math"
	"sort"
)

// ladderQueue is a two-tier ladder queue: a small sorted bottom rung that
// pops are served from, fed in chunks from an unsorted overflow tier that
// absorbs far-future inserts in O(1). It trades the calendar queue's
// width estimation for periodic sort-and-split respawns; kept as the
// benchmark competitor (see queue_bench_test.go).
//
// Invariant: every event in the overflow tier is strictly greater (by
// (At, seq)) than every event in the bottom rung. push preserves it by
// routing any event with At >= thresh to the overflow (its seq is fresh,
// hence maximal, so equal-At routing is safe); spill and respawn preserve
// it by splitting a fully sorted run.
type ladderQueue struct {
	bottom []*Event // sorted ascending (At, seq); live window is [head:]
	head   int
	over   []*Event // unsorted; every entry has At >= thresh
	thresh Time
	n      int
}

// ladder tier tags stored in Event.babs.
const (
	ladderBottom = 0
	ladderOver   = 1
)

// ladderChunk is the respawn chunk size and half the bottom-rung bound.
const ladderChunk = 64

func newLadderQueue() *ladderQueue {
	return &ladderQueue{thresh: Time(math.Inf(1))}
}

func (q *ladderQueue) push(ev *Event) {
	q.n++
	if ev.At >= q.thresh {
		ev.babs = ladderOver
		ev.index = len(q.over)
		q.over = append(q.over, ev)
		return
	}
	q.insertBottom(ev)
	if len(q.bottom)-q.head > 2*ladderChunk {
		q.spill()
	}
}

// insertBottom places ev into the sorted bottom rung. The new event's seq
// is maximal among pending events, so among equal-At entries it always
// sorts last — a plain upper-bound search on At suffices.
func (q *ladderQueue) insertBottom(ev *Event) {
	ev.babs = ladderBottom
	live := q.bottom[q.head:]
	pos := sort.Search(len(live), func(i int) bool { return live[i].At > ev.At })
	if pos == 0 && q.head > 0 {
		q.head--
		q.bottom[q.head] = ev
		ev.index = q.head
		return
	}
	abs := q.head + pos
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[abs+1:], q.bottom[abs:])
	q.bottom[abs] = ev
	for i := abs; i < len(q.bottom); i++ {
		q.bottom[i].index = i
	}
}

// spill moves the upper part of an oversized bottom rung to the overflow
// tier and tightens thresh to the split point.
func (q *ladderQueue) spill() {
	keep := q.head + ladderChunk
	q.thresh = q.bottom[keep].At
	for i := keep; i < len(q.bottom); i++ {
		ev := q.bottom[i]
		ev.babs = ladderOver
		ev.index = len(q.over)
		q.over = append(q.over, ev)
		q.bottom[i] = nil
	}
	q.bottom = q.bottom[:keep]
}

// respawn refills an empty bottom rung with the globally smallest chunk of
// the overflow tier.
func (q *ladderQueue) respawn() {
	sort.Slice(q.over, func(i, j int) bool { return eventLess(q.over[i], q.over[j]) })
	take := ladderChunk
	if take > len(q.over) {
		take = len(q.over)
	}
	q.bottom = q.bottom[:0]
	q.head = 0
	for i, ev := range q.over[:take] {
		ev.babs = ladderBottom
		ev.index = i
		q.bottom = append(q.bottom, ev)
	}
	rest := q.over[take:]
	copy(q.over, rest)
	for i := len(rest); i < len(q.over); i++ {
		q.over[i] = nil
	}
	q.over = q.over[:len(rest)]
	if len(q.over) == 0 {
		q.thresh = Time(math.Inf(1))
	} else {
		q.thresh = q.over[0].At
		for i, ev := range q.over {
			ev.index = i
			if ev.At < q.thresh {
				q.thresh = ev.At
			}
		}
	}
}

func (q *ladderQueue) popLE(until Time) *Event {
	if q.n == 0 {
		return nil
	}
	if q.head == len(q.bottom) {
		q.respawn()
	}
	ev := q.bottom[q.head]
	if ev.At > until {
		return nil
	}
	q.bottom[q.head] = nil
	q.head++
	if q.head == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.head = 0
	}
	ev.index = -1
	q.n--
	return ev
}

func (q *ladderQueue) remove(ev *Event) {
	q.n--
	if ev.babs == ladderOver {
		last := len(q.over) - 1
		if i := ev.index; i != last {
			moved := q.over[last]
			q.over[i] = moved
			moved.index = i
		}
		q.over[last] = nil
		q.over = q.over[:last]
		ev.index = -1
		return
	}
	pos := ev.index
	if pos == q.head {
		q.bottom[q.head] = nil
		q.head++
	} else {
		copy(q.bottom[pos:], q.bottom[pos+1:])
		q.bottom[len(q.bottom)-1] = nil
		q.bottom = q.bottom[:len(q.bottom)-1]
		for i := pos; i < len(q.bottom); i++ {
			q.bottom[i].index = i
		}
	}
	if q.head == len(q.bottom) {
		q.bottom = q.bottom[:0]
		q.head = 0
	}
	ev.index = -1
}

func (q *ladderQueue) len() int { return q.n }
