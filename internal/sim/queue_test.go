package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// queueTrace drives one random schedule/cancel/run interleaving against an
// engine and records the exact fire sequence. The same seeded script runs
// against every queue kind; the heap (the original implementation) is the
// ordering oracle.
type queueTraceOp struct {
	kind   int // 0 schedule, 1 cancel, 2 run-until
	at     float64
	cancel int // index into previously scheduled refs
}

func randomScript(seed int64, n int) []queueTraceOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]queueTraceOp, n)
	for i := range ops {
		switch k := rng.Intn(10); {
		case k < 6:
			// Mix coarse and fine timestamps so equal-At ties are common
			// and bucket widths see multi-scale gaps.
			at := rng.Float64() * 50
			if rng.Intn(3) == 0 {
				at = float64(rng.Intn(20)) // heavy tie traffic
			}
			ops[i] = queueTraceOp{kind: 0, at: at}
		case k < 8:
			ops[i] = queueTraceOp{kind: 1, cancel: rng.Int()}
		default:
			ops[i] = queueTraceOp{kind: 2, at: rng.Float64() * 60}
		}
	}
	return ops
}

// runScript replays a script and returns the fire log: "<id>@<time>" per
// fired event plus each ref's Cancelled() report right after cancelling.
func runScript(k QueueKind, ops []queueTraceOp) []string {
	e := NewEngineWithQueue(k)
	var log []string
	var refs []EventRef
	id := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			n := id
			id++
			at := Time(op.at)
			refs = append(refs, e.At(at, "p", func(en *Engine) {
				log = append(log, fmt.Sprintf("%d@%v", n, en.Now()))
			}))
		case 1:
			if len(refs) == 0 {
				continue
			}
			ref := refs[op.cancel%len(refs)]
			e.Cancel(ref)
			log = append(log, fmt.Sprintf("cancelled=%v", ref.Cancelled()))
		case 2:
			e.Run(Time(op.at))
		}
	}
	e.RunAll()
	log = append(log, fmt.Sprintf("fired=%d now=%v pending=%d", e.Fired(), e.Now(), e.Pending()))
	return log
}

// TestQueueKindsMatchHeap is the tentpole's property test: for hundreds of
// random schedule/cancel/run interleavings, the calendar and ladder queues
// must reproduce the heap's fire sequence exactly — same events, same
// times, same tie order, same Cancelled() reports.
func TestQueueKindsMatchHeap(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		script := randomScript(seed, 200)
		want := runScript(QueueHeap, script)
		for _, k := range []QueueKind{QueueCalendar, QueueLadder} {
			got := runScript(k, script)
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: %d log entries, heap has %d", seed, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v diverges at %d: %q vs heap %q", seed, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQueueKindsMatchHeapNested adds the simulator's actual event shape:
// callbacks that schedule and cancel further events (completions that
// reschedule, stage-1 interrupts), again differential against the heap.
func TestQueueKindsMatchHeapNested(t *testing.T) {
	run := func(k QueueKind, seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngineWithQueue(k)
		var log []string
		var pending []EventRef
		var tick func(en *Engine)
		n := 0
		tick = func(en *Engine) {
			log = append(log, fmt.Sprintf("t=%v", en.Now()))
			if n >= 500 {
				return
			}
			n++
			switch rng.Intn(4) {
			case 0: // steady arrival chain
				pending = append(pending, en.After(Duration(rng.ExpFloat64()*0.01), "a", tick))
			case 1: // schedule then immediately reschedule (cancel+schedule)
				ref := en.After(Duration(rng.Float64()), "b", tick)
				en.Cancel(ref)
				pending = append(pending, en.After(Duration(rng.Float64()*0.5), "b2", tick))
			case 2: // cancel a random outstanding event
				if len(pending) > 0 {
					en.Cancel(pending[rng.Intn(len(pending))])
				}
				pending = append(pending, en.After(0, "c", tick)) // same-time tie
			default: // burst of ties at one instant
				at := en.Now() + Duration(rng.Float64()*0.1)
				for i := 0; i < 3; i++ {
					pending = append(pending, en.At(at, "d", tick))
				}
			}
		}
		e.At(0, "seed", tick)
		e.RunAll()
		log = append(log, fmt.Sprintf("fired=%d", e.Fired()))
		return log
	}
	for seed := int64(0); seed < 40; seed++ {
		want := run(QueueHeap, seed)
		for _, k := range []QueueKind{QueueCalendar, QueueLadder} {
			got := run(k, seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: %d log entries, heap has %d", seed, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v diverges at %d: %q vs heap %q", seed, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCalendarQueueResizeChurn forces the calendar through grow, shrink
// and direct-search recalibration while preserving order.
func TestCalendarQueueResizeChurn(t *testing.T) {
	e := NewEngineWithQueue(QueueCalendar)
	var fired []Time
	record := func(en *Engine) { fired = append(fired, en.Now()) }
	// Dense cluster → grow; then sparse outliers → direct searches.
	for i := 0; i < 2000; i++ {
		e.At(Time(float64(i%50)*1e-6), "dense", record)
	}
	for i := 0; i < 10; i++ {
		e.At(Time(1000+float64(i)*3600), "sparse", record)
	}
	e.RunAll()
	if len(fired) != 2010 {
		t.Fatalf("fired %d, want 2010", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}
