package sim

// calendarQueue is a dynamic calendar queue (R. Brown, CACM 1988): an open
// hash of unsorted buckets indexed by event time, scanned like the days of
// a calendar. With the bucket width tracking the mean gap between pending
// events, schedule and fire are O(1) amortized at any queue size — the
// property that lets fleet sweeps hold tens of thousands of pending events
// without the O(log n) sift of a binary heap.
//
// Exact-ordering contract: pop returns the global minimum by (At, seq).
// Two events with equal At always compute the same absolute bucket number
// (babs is derived from At alone), so ties are resolved inside one bucket
// scan by seq. Bucket membership for the year mechanism is decided by the
// stored babs — never by re-deriving boundaries from floats — so the scan
// can never disagree with the placement that push performed.
type calendarQueue struct {
	buckets [][]*Event
	// min is the peek cache: when non-nil it points at the global minimum
	// by (At, seq), letting pops and repeated failed peeks (Run calls that
	// fire nothing) skip the bucket scan. nil means unknown. push keeps it
	// current; unlink invalidates it; a scan that stops at an event past
	// until repopulates it.
	min *Event
	// solo holds the sole pending event while n==1 and the event was
	// pushed onto an empty queue, bypassing the bucket machinery entirely
	// (the schedule→fire and schedule→cancel cycles of a drained engine
	// are then as cheap as a one-element heap). Invariant: solo != nil
	// implies n == 1 and all buckets empty; the next push demotes it into
	// the buckets first.
	solo   *Event
	mask   int     // len(buckets)-1; bucket count is a power of two
	n      int     // pending events
	w      Time    // bucket width (virtual seconds per calendar day)
	invW   float64 // 1/w, so the push path multiplies instead of divides
	curAbs int64   // absolute bucket number the pop scan resumes from
	lastAt Time    // At of the last popped event (scan floor after resize)
	direct int     // consecutive pops that fell through to direct search
}

const (
	minCalBuckets = 4
	maxCalBuckets = 1 << 17
	calWidthMin   = Time(1e-9)
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*Event, minCalBuckets),
		mask:    minCalBuckets - 1,
		w:       Millisecond, // the simulator's natural timescale; resizes re-estimate
		invW:    1 / float64(Millisecond),
	}
}

// absOf maps a timestamp to its absolute (non-wrapped) bucket number.
// Monotone nondecreasing in at, which is what the ordering proof needs.
func (q *calendarQueue) absOf(at Time) int64 {
	f := float64(at) * q.invW
	if f >= 9e15 { // keep well inside int64 (and float64-exact integers)
		f = 9e15
	}
	if f < 0 {
		f = 0
	}
	return int64(f)
}

func (q *calendarQueue) insert(ev *Event) {
	abs := q.absOf(ev.At)
	ev.babs = abs
	// Run(until) with until < now rewinds the engine clock, so a push can
	// land before the last popped timestamp; pull the scan floor back so
	// the pop scan cannot skip it.
	if abs < q.curAbs {
		q.curAbs = abs
	}
	if ev.At < q.lastAt {
		q.lastAt = ev.At
	}
	b := int(abs) & q.mask
	bl := q.buckets[b]
	ev.index = len(bl)
	q.buckets[b] = append(bl, ev)
	q.n++
	// Lazy peek cache: only kept current once a scan has populated it, so
	// the push/cancel cycle never pays the extra store.
	if q.min != nil && eventLess(ev, q.min) {
		q.min = ev
	}
}

func (q *calendarQueue) push(ev *Event) {
	if q.n == 0 {
		ev.index = 0 // a non-negative index marks the event cancellable
		q.solo = ev
		q.n = 1
		return
	}
	if s := q.solo; s != nil {
		q.solo = nil
		q.n--
		q.insert(s)
	}
	q.insert(ev)
	if nb := q.mask + 1; q.n > nb*2 && nb < maxCalBuckets {
		q.resize(nb * 2)
	}
}

// unlink removes a node from its bucket by swap-remove (bucket order is
// irrelevant: pop always scans for the minimum).
func (q *calendarQueue) unlink(ev *Event) {
	b := int(ev.babs) & q.mask
	bl := q.buckets[b]
	last := len(bl) - 1
	if i := ev.index; i != last {
		moved := bl[last]
		bl[i] = moved
		moved.index = i
	}
	bl[last] = nil
	q.buckets[b] = bl[:last]
	ev.index = -1
	q.n--
	if ev == q.min {
		q.min = nil
	}
}

func (q *calendarQueue) remove(ev *Event) {
	if ev == q.solo {
		q.solo = nil
		q.n = 0
		ev.index = -1
		return
	}
	q.unlink(ev)
	if nb := q.mask + 1; q.n < nb/8 && nb > minCalBuckets {
		q.resize(nb / 2)
	}
}

func (q *calendarQueue) popLE(until Time) *Event {
	if s := q.solo; s != nil {
		if s.At > until {
			return nil
		}
		q.solo = nil
		q.n = 0
		s.index = -1
		q.lastAt = s.At // scan floor for later pushes; curAbs stays a safe lower bound
		return s
	}
	if m := q.min; m != nil {
		if m.At > until {
			return nil
		}
		q.curAbs = m.babs
		q.direct = 0
		return q.take(m)
	}
	if q.n == 0 {
		return nil
	}
	if q.n > 2 {
		nb := q.mask + 1
		abs := q.curAbs
		for i := 0; i < nb; i++ {
			if bl := q.buckets[int(abs)&q.mask]; len(bl) > 0 {
				var best, best2 *Event
				for _, ev := range bl {
					// Same-year events only: a bucket also holds events one
					// or more full calendar years ahead.
					if ev.babs != abs {
						continue
					}
					if best == nil || eventLess(ev, best) {
						best2, best = best, ev
					} else if best2 == nil || eventLess(ev, best2) {
						best2 = ev
					}
				}
				if best != nil {
					if best.At > until {
						q.min = best // cache for the next peek
						return nil
					}
					q.curAbs = abs
					q.direct = 0
					ev := q.take(best)
					// The runner-up in this day is the new global minimum
					// (same-year bucket members precede every later day), so
					// the next pop skips the scan entirely. One scan, two
					// pops.
					q.min = best2
					return ev
				}
			}
			abs++
		}
		// A whole year of empty days: the pending events are sparse
		// relative to the bucket width.
		q.direct++
	}
	// Direct search: find the global minimum and jump the calendar to it.
	// Tiny queues land here unconditionally (a scan over <= minCalBuckets*2
	// buckets beats the year mechanism); larger ones only after a full
	// empty year.
	var best, best2 *Event
	for _, bl := range q.buckets {
		for _, ev := range bl {
			if best == nil || eventLess(ev, best) {
				best2, best = best, ev
			} else if best2 == nil || eventLess(ev, best2) {
				best2 = ev
			}
		}
	}
	if best == nil {
		return nil
	}
	if best.At > until {
		q.min = best // cache for the next peek
		return nil
	}
	q.curAbs = best.babs
	ev := q.take(best)
	q.min = best2 // runner-up: the next pop's minimum, scan-free
	if q.direct > 8 && q.n > 1 {
		// Repeated direct searches mean the width no longer matches the
		// event-time distribution; re-estimate it at the current size.
		q.direct = 0
		q.resize(q.mask + 1)
	}
	return ev
}

// take pops a specific node: unlink plus scan-floor bookkeeping, and the
// shrink check that keeps the load factor near one as the queue drains.
func (q *calendarQueue) take(ev *Event) *Event {
	q.unlink(ev)
	q.lastAt = ev.At
	if nb := q.mask + 1; q.n < nb/8 && nb > minCalBuckets {
		q.resize(nb / 2)
	}
	return ev
}

// resize rebuilds the calendar with nb buckets and a width re-estimated
// from the live population (Brown's rule: ~3x the mean gap, so one bucket
// holds a handful of events and one year spans the whole horizon).
func (q *calendarQueue) resize(nb int) {
	var lo, hi Time
	seen := false
	for _, bl := range q.buckets {
		for _, ev := range bl {
			if !seen || ev.At < lo {
				lo = ev.At
			}
			if !seen || ev.At > hi {
				hi = ev.At
			}
			seen = true
		}
	}
	if seen && hi > lo && q.n > 1 {
		w := Time(3 * float64(hi-lo) / float64(q.n))
		if w < calWidthMin {
			w = calWidthMin
		}
		q.w = w
		q.invW = 1 / float64(w)
	}
	old := q.buckets
	q.buckets = make([][]*Event, nb)
	q.mask = nb - 1
	q.n = 0
	q.curAbs = q.absOf(q.lastAt)
	for _, bl := range old {
		for _, ev := range bl {
			q.insert(ev)
		}
	}
}

func (q *calendarQueue) len() int { return q.n }
