package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, "c", func(*Engine) { got = append(got, 3) })
	e.At(1, "a", func(*Engine) { got = append(got, 1) })
	e.At(2, "b", func(*Engine) { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("fired order %v, want %v", got, want)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "tie", func(*Engine) { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order broken at %d: got %v", i, got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(1, "outer", func(en *Engine) {
		got = append(got, en.Now())
		en.After(2, "inner", func(en2 *Engine) {
			got = append(got, en2.Now())
		})
	})
	end := e.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("nested events fired at %v, want [1 3]", got)
	}
	if end != 3 {
		t.Fatalf("RunAll returned %v, want 3", end)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, "x", func(*Engine) { fired++ })
	e.At(2, "y", func(*Engine) { fired++ })
	e.At(10, "z", func(*Engine) { fired++ })
	end := e.Run(5)
	if fired != 2 {
		t.Fatalf("fired %d events before t=5, want 2", fired)
	}
	if end != 5 {
		t.Fatalf("Run returned %v, want 5", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Event scheduled exactly at the boundary still fires.
	e.At(7, "w", func(*Engine) { fired++ })
	e.Run(7)
	if fired != 3 {
		t.Fatalf("boundary event did not fire; fired=%d", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, "x", func(*Engine) { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-nil must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i), "n", func(*Engine) { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	if len(got) != 8 {
		t.Fatalf("fired %d, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, "a", func(en *Engine) { fired++; en.Stop() })
	e.At(2, "b", func(*Engine) { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop; fired=%d", fired)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %v after stop, want 1", e.Now())
	}
}

func TestSchedulingInThePastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(5, "outer", func(en *Engine) {
		en.At(1, "past", func(en2 *Engine) { at = en2.Now() })
	})
	e.RunAll()
	if at != 5 {
		t.Fatalf("past-scheduled event fired at %v, want clamp to 5", at)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(2, "outer", func(en *Engine) {
		en.After(-3, "neg", func(en2 *Engine) { at = en2.Now() })
	})
	e.RunAll()
	if at != 2 {
		t.Fatalf("negative After fired at %v, want 2", at)
	}
}

func TestTraceHook(t *testing.T) {
	e := NewEngine()
	var names []string
	e.Trace = func(_ Time, name string) { names = append(names, name) }
	e.At(1, "first", func(*Engine) {})
	e.At(2, "second", func(*Engine) {})
	e.RunAll()
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Fatalf("trace = %v", names)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{2e-3, "2ms"},
		{5e-6, "5us"},
		{7e-9, "7ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// Property: events fire in nondecreasing time order no matter the insertion
// order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		var firedAt []Time
		for i := 0; i < count; i++ {
			at := Time(rng.Float64() * 100)
			e.At(at, "p", func(en *Engine) { firedAt = append(firedAt, en.Now()) })
		}
		e.RunAll()
		return sort.SliceIsSorted(firedAt, func(i, j int) bool { return firedAt[i] < firedAt[j] }) &&
			len(firedAt) == count
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Run(until) never advances the clock past until, and never fires
// events scheduled after it.
func TestRunUntilProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		until := Time(rng.Float64() * 50)
		late := 0
		for i := 0; i < 40; i++ {
			at := Time(rng.Float64() * 100)
			e.At(at, "p", func(en *Engine) {
				if en.Now() > until {
					late++
				}
			})
		}
		end := e.Run(until)
		return late == 0 && end <= until+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), "b", func(*Engine) {})
		}
		e.RunAll()
	}
}
