package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// forEachQueue runs one behavioral test against every queue implementation:
// the engine's semantics contract is queue-independent, so the whole suite
// executes once per QueueKind (the ISSUE-7 constructor switch).
func forEachQueue(t *testing.T, f func(t *testing.T, newEngine func() *Engine)) {
	for _, k := range QueueKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f(t, func() *Engine { return NewEngineWithQueue(k) })
		})
	}
}

func TestEngineOrdering(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		e.At(3, "c", func(*Engine) { got = append(got, 3) })
		e.At(1, "a", func(*Engine) { got = append(got, 1) })
		e.At(2, "b", func(*Engine) { got = append(got, 2) })
		e.RunAll()
		want := []int{1, 2, 3}
		if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Fatalf("fired order %v, want %v", got, want)
		}
		if e.Fired() != 3 {
			t.Fatalf("Fired() = %d, want 3", e.Fired())
		}
	})
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			e.At(5, "tie", func(*Engine) { got = append(got, i) })
		}
		e.RunAll()
		for i, v := range got {
			if v != i {
				t.Fatalf("tie-break order broken at %d: got %v", i, got)
			}
		}
	})
}

func TestEngineNestedScheduling(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []Time
		e.At(1, "outer", func(en *Engine) {
			got = append(got, en.Now())
			en.After(2, "inner", func(en2 *Engine) {
				got = append(got, en2.Now())
			})
		})
		end := e.RunAll()
		if len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Fatalf("nested events fired at %v, want [1 3]", got)
		}
		if end != 3 {
			t.Fatalf("RunAll returned %v, want 3", end)
		}
	})
}

func TestEngineRunUntil(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		fired := 0
		e.At(1, "x", func(*Engine) { fired++ })
		e.At(2, "y", func(*Engine) { fired++ })
		e.At(10, "z", func(*Engine) { fired++ })
		end := e.Run(5)
		if fired != 2 {
			t.Fatalf("fired %d events before t=5, want 2", fired)
		}
		if end != 5 {
			t.Fatalf("Run returned %v, want 5", end)
		}
		if e.Pending() != 1 {
			t.Fatalf("pending = %d, want 1", e.Pending())
		}
		// Event scheduled exactly at the boundary still fires.
		e.At(7, "w", func(*Engine) { fired++ })
		e.Run(7)
		if fired != 3 {
			t.Fatalf("boundary event did not fire; fired=%d", fired)
		}
	})
}

func TestEngineCancel(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		fired := false
		ev := e.At(1, "x", func(*Engine) { fired = true })
		e.Cancel(ev)
		if !ev.Cancelled() {
			t.Fatal("event not marked cancelled")
		}
		e.RunAll()
		if fired {
			t.Fatal("cancelled event fired")
		}
		// Double-cancel and cancelling the zero ref must not panic.
		e.Cancel(ev)
		e.Cancel(EventRef{})
	})
}

// TestCancelFireRecancelSemantics pins the exact disposition contract the
// event pool must preserve: fire → Cancelled()==false and Cancel is a
// no-op; cancel → Cancelled()==true and re-cancel is a no-op; and a stale
// ref whose node has been recycled for a new event can never cancel that
// new event.
func TestCancelFireRecancelSemantics(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()

		// Fired event: not cancelled, cancel-after-fire is a no-op.
		firedCount := 0
		fired := e.At(1, "fired", func(*Engine) { firedCount++ })
		e.RunAll()
		if firedCount != 1 {
			t.Fatalf("fired %d times, want 1", firedCount)
		}
		if fired.Cancelled() {
			t.Fatal("fired event reports Cancelled()")
		}
		e.Cancel(fired) // must be a no-op
		if fired.Cancelled() {
			t.Fatal("cancel-after-fire marked the event cancelled")
		}

		// Cancelled event: Cancelled() true immediately, never fires,
		// re-cancel is a no-op and keeps the report stable.
		ran := false
		ev := e.At(5, "victim", func(*Engine) { ran = true })
		e.Cancel(ev)
		if !ev.Cancelled() {
			t.Fatal("cancelled event does not report Cancelled()")
		}
		e.Cancel(ev) // re-cancel: no-op
		if !ev.Cancelled() {
			t.Fatal("re-cancel cleared the Cancelled() report")
		}
		e.RunAll()
		if ran {
			t.Fatal("cancelled event fired")
		}
	})
}

// TestStaleRefCannotCancelRecycledEvent is the pool-safety property: after
// an event fires (or is cancelled) its node may be reused for a brand-new
// event; the old ref must then be inert.
func TestStaleRefCannotCancelRecycledEvent(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		old := e.At(1, "old", func(*Engine) {})
		e.RunAll() // old fires; its node goes to the freelist

		ran := false
		fresh := e.At(2, "fresh", func(*Engine) { ran = true })
		// The engine recycles nodes LIFO, so fresh reuses old's node.
		// Cancelling through the stale ref must not touch it.
		e.Cancel(old)
		if fresh.Cancelled() {
			t.Fatal("stale ref cancelled the recycled event")
		}
		e.RunAll()
		if !ran {
			t.Fatal("recycled event did not fire after stale-ref cancel")
		}

		// Same property for a cancel → recycle chain.
		victim := e.At(3, "victim", func(*Engine) {})
		e.Cancel(victim)
		ran2 := false
		e.At(4, "fresh2", func(*Engine) { ran2 = true })
		e.Cancel(victim) // stale: node recycled into fresh2
		if victim.Cancelled() {
			t.Fatal("stale ref still reports Cancelled() after node reuse")
		}
		e.RunAll()
		if !ran2 {
			t.Fatal("event recycled from a cancelled node did not fire")
		}
	})
}

// TestFreelistReusePreservesOrdering floods the engine with
// schedule/cancel churn and checks the (time, seq) contract holds
// throughout: equal-time events fire in scheduling order even when their
// nodes came off the freelist.
func TestFreelistReusePreservesOrdering(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		// Prime the freelist.
		for i := 0; i < 32; i++ {
			e.Cancel(e.At(Time(i), "prime", func(*Engine) {}))
		}
		var got []int
		for i := 0; i < 64; i++ {
			i := i
			e.At(100, "tie", func(*Engine) { got = append(got, i) })
		}
		e.RunAll()
		if len(got) != 64 {
			t.Fatalf("fired %d, want 64", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("recycled nodes broke FIFO tie-break at %d: %v", i, got[:i+1])
			}
		}
	})
}

func TestEngineCancelOneOfMany(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		evs := make([]EventRef, 10)
		for i := 0; i < 10; i++ {
			i := i
			evs[i] = e.At(Time(i), "n", func(*Engine) { got = append(got, i) })
		}
		e.Cancel(evs[4])
		e.Cancel(evs[7])
		e.RunAll()
		if len(got) != 8 {
			t.Fatalf("fired %d, want 8: %v", len(got), got)
		}
		for _, v := range got {
			if v == 4 || v == 7 {
				t.Fatalf("cancelled event %d fired", v)
			}
		}
	})
}

func TestEngineStop(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		fired := 0
		e.At(1, "a", func(en *Engine) { fired++; en.Stop() })
		e.At(2, "b", func(*Engine) { fired++ })
		e.RunAll()
		if fired != 1 {
			t.Fatalf("Stop did not halt the loop; fired=%d", fired)
		}
		if e.Now() != 1 {
			t.Fatalf("Now() = %v after stop, want 1", e.Now())
		}
	})
}

func TestSchedulingInThePastClampsToNow(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var at Time = -1
		e.At(5, "outer", func(en *Engine) {
			en.At(1, "past", func(en2 *Engine) { at = en2.Now() })
		})
		e.RunAll()
		if at != 5 {
			t.Fatalf("past-scheduled event fired at %v, want clamp to 5", at)
		}
	})
}

func TestAfterNegativeClamps(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var at Time = -1
		e.At(2, "outer", func(en *Engine) {
			en.After(-3, "neg", func(en2 *Engine) { at = en2.Now() })
		})
		e.RunAll()
		if at != 2 {
			t.Fatalf("negative After fired at %v, want 2", at)
		}
	})
}

func TestTraceHook(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var names []string
		e.Trace = func(_ Time, name string) { names = append(names, name) }
		e.At(1, "first", func(*Engine) {})
		e.At(2, "second", func(*Engine) {})
		e.RunAll()
		if len(names) != 2 || names[0] != "first" || names[1] != "second" {
			t.Fatalf("trace = %v", names)
		}
	})
}

// TestAtCallNoClosure pins the closure-free scheduling form: the same
// long-lived func value fires with per-event arguments, in order, and is
// cancellable exactly like the closure form.
func TestAtCallNoClosure(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		fn := func(_ *Engine, arg any) { got = append(got, *arg.(*int)) }
		vals := []int{10, 20, 30, 40}
		e.AtCall(2, "b", fn, &vals[1])
		e.AtCall(1, "a", fn, &vals[0])
		e.AfterCall(3, "c", fn, &vals[2])
		victim := e.AtCall(2.5, "victim", fn, &vals[3])
		e.Cancel(victim)
		if !victim.Cancelled() {
			t.Fatal("AtCall event not cancellable")
		}
		e.RunAll()
		if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
			t.Fatalf("AtCall order = %v, want [10 20 30]", got)
		}
	})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{2e-3, "2ms"},
		{5e-6, "5us"},
		{7e-9, "7ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// Property: events fire in nondecreasing time order no matter the insertion
// order.
func TestEventOrderProperty(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		prop := func(seed int64, n uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			e := newEngine()
			count := int(n%64) + 1
			var firedAt []Time
			for i := 0; i < count; i++ {
				at := Time(rng.Float64() * 100)
				e.At(at, "p", func(en *Engine) { firedAt = append(firedAt, en.Now()) })
			}
			e.RunAll()
			return sort.SliceIsSorted(firedAt, func(i, j int) bool { return firedAt[i] < firedAt[j] }) &&
				len(firedAt) == count
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: Run(until) never advances the clock past until, and never fires
// events scheduled after it.
func TestRunUntilProperty(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			e := newEngine()
			until := Time(rng.Float64() * 50)
			late := 0
			for i := 0; i < 40; i++ {
				at := Time(rng.Float64() * 100)
				e.At(at, "p", func(en *Engine) {
					if en.Now() > until {
						late++
					}
				})
			}
			end := e.Run(until)
			return late == 0 && end <= until+1e-12
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), "b", func(*Engine) {})
		}
		e.RunAll()
	}
}

// BenchmarkEngineAfterFire measures the steady-state schedule→fire cycle
// (the shape of the simulator's inner loop: millions of After calls per
// run). With the event freelist this is allocation-free.
func BenchmarkEngineAfterFire(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, "b", fn)
		e.RunAll()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule→cancel cycle
// (rescheduleCompletion's pattern on every frequency change).
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(1, "b", fn)
		e.Cancel(ev)
	}
}
