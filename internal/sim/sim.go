// Package sim provides a deterministic discrete-event simulation engine.
//
// All ReTail experiments run in virtual time: the engine keeps a priority
// queue of events ordered by (time, sequence number), so two events
// scheduled for the same instant fire in the order they were scheduled.
// Determinism is important because the paper's evaluation compares power
// managers on identical request streams; every source of randomness is a
// seeded *rand.Rand owned by the caller, never the global one.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time measured in seconds from the start of the
// simulation. A float64 carries sub-microsecond resolution over the
// multi-minute horizons the experiments use.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, mirroring the time package for readability at call
// sites ("10*sim.Millisecond" instead of "0.01").
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Seconds reports t as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Std converts a virtual duration to a time.Duration for display purposes.
func (t Time) Std() time.Duration { return time.Duration(float64(t) * 1e9) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.6gs", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.6gms", float64(t)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.6gus", float64(t)*1e6)
	case t == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.6gns", float64(t)*1e9)
	}
}

// Event is a scheduled callback. The callback receives the engine so it can
// schedule further events.
//
// Event nodes are pooled: once an event has fired or been cancelled, the
// engine recycles the node for a later At/After call. Callers therefore
// never hold *Event directly — At and After return an EventRef, a
// generation-stamped handle that stays safe (Cancel becomes a no-op,
// Cancelled reports false) after the node has been reused.
type Event struct {
	At   Time
	Do   func(*Engine)
	Name string // optional label for tracing

	seq   uint64
	index int // heap index; -1 once popped, -2 once cancelled
	gen   uint64
}

// EventRef is a handle to one scheduled instance of an event. The zero
// EventRef is valid: Cancel is a no-op and Cancelled reports false.
//
// Because event nodes are recycled, a ref becomes stale once the engine
// reuses its node for a new event; a stale ref's Cancel is a guaranteed
// no-op (it can never cancel the new instance) and its Cancelled reports
// false.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Valid reports whether the ref points at an event node (zero refs do not).
// It does not say whether the event is still pending.
func (r EventRef) Valid() bool { return r.ev != nil }

// Cancelled reports whether this scheduled instance was removed before
// firing. It is exact until the engine recycles the node (cancelled nodes
// are reused by later At/After calls), so check it promptly after Cancel
// rather than arbitrarily later; a recycled node's old refs report false.
func (r EventRef) Cancelled() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.index == -2
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	fired   uint64

	// free is the event-node freelist. A full run schedules millions of
	// events (arrivals, stage-1 interrupts, completion reschedules,
	// deferred frequency writes); recycling nodes on fire and on cancel
	// keeps the inner loop off the allocator. Determinism is unaffected:
	// ordering is (At, seq) and seq always comes fresh from the engine
	// counter, never from the recycled node.
	free []*Event

	// Trace, when non-nil, is called for every event fired.
	Trace func(at Time, name string)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the present instant) fires the event at the current time but after all
// currently pending events at that time. It returns a ref so the caller
// can cancel the event.
func (e *Engine) At(at Time, name string, fn func(*Engine)) EventRef {
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++ // invalidate refs to the node's previous life
	} else {
		ev = &Event{}
	}
	ev.At, ev.Do, ev.Name, ev.seq = at, fn, name, e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func(*Engine)) EventRef {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Cancel removes a scheduled event. Cancelling a zero ref, an
// already-fired, an already-cancelled, or a stale (recycled-node) ref is a
// no-op — a ref can only ever cancel the exact instance it was created
// for.
func (e *Engine) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.gen != ref.gen || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
	ev.Do, ev.Name = nil, "" // drop closure references for GC
	e.free = append(e.free, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock passes until (events at exactly until still fire).
// It returns the virtual time at which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.At > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.fired++
		if e.Trace != nil {
			e.Trace(e.now, next.Name)
		}
		do := next.Do
		// Recycle before running the callback: a nested After can reuse
		// the still-hot node immediately. Refs to the fired instance stay
		// safe via the generation stamp.
		next.Do, next.Name = nil, ""
		e.free = append(e.free, next)
		do(e)
	}
	if e.now < until && !e.stopped && !math.IsInf(float64(until), 1) {
		e.now = until
	}
	return e.now
}

// RunAll executes every pending event regardless of time. Useful in tests.
func (e *Engine) RunAll() Time { return e.Run(Time(math.Inf(1))) }
