// Package sim provides a deterministic discrete-event simulation engine.
//
// All ReTail experiments run in virtual time: the engine keeps a priority
// queue of events ordered by (time, sequence number), so two events
// scheduled for the same instant fire in the order they were scheduled.
// Determinism is important because the paper's evaluation compares power
// managers on identical request streams; every source of randomness is a
// seeded *rand.Rand owned by the caller, never the global one.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time measured in seconds from the start of the
// simulation. A float64 carries sub-microsecond resolution over the
// multi-minute horizons the experiments use.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, mirroring the time package for readability at call
// sites ("10*sim.Millisecond" instead of "0.01").
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Seconds reports t as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Std converts a virtual duration to a time.Duration for display purposes.
func (t Time) Std() time.Duration { return time.Duration(float64(t) * 1e9) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.6gs", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.6gms", float64(t)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.6gus", float64(t)*1e6)
	case t == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.6gns", float64(t)*1e9)
	}
}

// Event is a scheduled callback. The callback receives the engine so it can
// schedule further events.
type Event struct {
	At   Time
	Do   func(*Engine)
	Name string // optional label for tracing

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	fired   uint64

	// Trace, when non-nil, is called for every event fired.
	Trace func(at Time, name string)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the present instant) fires the event at the current time but after all
// currently pending events at that time. It returns the event so the caller
// can cancel it.
func (e *Engine) At(at Time, name string, fn func(*Engine)) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Do: fn, Name: name, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func(*Engine)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock passes until (events at exactly until still fire).
// It returns the virtual time at which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.At > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.fired++
		if e.Trace != nil {
			e.Trace(e.now, next.Name)
		}
		next.Do(e)
	}
	if e.now < until && !e.stopped && !math.IsInf(float64(until), 1) {
		e.now = until
	}
	return e.now
}

// RunAll executes every pending event regardless of time. Useful in tests.
func (e *Engine) RunAll() Time { return e.Run(Time(math.Inf(1))) }
