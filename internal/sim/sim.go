// Package sim provides a deterministic discrete-event simulation engine.
//
// All ReTail experiments run in virtual time: the engine keeps a priority
// queue of events ordered by (time, sequence number), so two events
// scheduled for the same instant fire in the order they were scheduled.
// Determinism is important because the paper's evaluation compares power
// managers on identical request streams; every source of randomness is a
// seeded *rand.Rand owned by the caller, never the global one.
//
// The queue behind the engine is pluggable (see QueueKind): a calendar
// queue serves as the default hot-path structure, with the binary heap and
// a ladder queue kept as reference implementations. Every queue obeys the
// same exact-ordering contract, enforced by property tests that replay
// identical schedules through all of them.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time measured in seconds from the start of the
// simulation. A float64 carries sub-microsecond resolution over the
// multi-minute horizons the experiments use.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, mirroring the time package for readability at call
// sites ("10*sim.Millisecond" instead of "0.01").
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Seconds reports t as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Std converts a virtual duration to a time.Duration for display purposes.
func (t Time) Std() time.Duration { return time.Duration(float64(t) * 1e9) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	abs := math.Abs(float64(t))
	switch {
	case abs >= 1:
		return fmt.Sprintf("%.6gs", float64(t))
	case abs >= 1e-3:
		return fmt.Sprintf("%.6gms", float64(t)*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.6gus", float64(t)*1e6)
	case t == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.6gns", float64(t)*1e9)
	}
}

// Event is a scheduled callback. The callback receives the engine so it can
// schedule further events.
//
// Event nodes are pooled: once an event has fired or been cancelled, the
// engine recycles the node for a later At/After call. Callers therefore
// never hold *Event directly — At and After return an EventRef, a
// generation-stamped handle that stays safe (Cancel becomes a no-op,
// Cancelled reports false) after the node has been reused.
type Event struct {
	// Ordering and queue-bookkeeping fields first: the queue's scan and
	// unlink paths touch only this 40-byte prefix, so it stays in one
	// cache line per node.
	At    Time
	seq   uint64
	index int   // position within the queue's container; -1 once popped, -2 once cancelled
	babs  int64 // queue-private location tag (calendar: absolute bucket; ladder: tier)
	gen   uint64

	Do   func(*Engine)
	Name string // optional label for tracing

	// do2/arg is the closure-free callback form (AtCall/AfterCall): a
	// long-lived func value plus a per-fire argument (a pointer boxes into
	// the interface without allocating). Exactly one of Do and do2 is set
	// on a scheduled node.
	do2 func(*Engine, any)
	arg any
}

// EventRef is a handle to one scheduled instance of an event. The zero
// EventRef is valid: Cancel is a no-op and Cancelled reports false.
//
// Because event nodes are recycled, a ref becomes stale once the engine
// reuses its node for a new event; a stale ref's Cancel is a guaranteed
// no-op (it can never cancel the new instance) and its Cancelled reports
// false.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Valid reports whether the ref points at an event node (zero refs do not).
// It does not say whether the event is still pending.
func (r EventRef) Valid() bool { return r.ev != nil }

// Cancelled reports whether this scheduled instance was removed before
// firing. It is exact until the engine recycles the node (cancelled nodes
// are reused by later At/After calls), so check it promptly after Cancel
// rather than arbitrarily later; a recycled node's old refs report false.
func (r EventRef) Cancelled() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.index == -2
}

// eventLess is the engine-wide total order: (At, seq).
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// eventQueue is the pluggable priority structure behind the engine. Every
// implementation must pop in exact (At, seq) order and support O(~1)
// removal of an arbitrary pending node (Cancel).
type eventQueue interface {
	// push inserts a node. The queue owns ev.index (and may use ev.babs)
	// to remember the node's location until it is popped or removed.
	push(ev *Event)
	// popLE removes and returns the minimum node if its At is <= until,
	// else returns nil and leaves the queue unchanged. Callable on an
	// empty queue (returns nil): the engine's fire loop distinguishes the
	// two nil cases with one len() call on the cold path.
	popLE(until Time) *Event
	// remove deletes a pending node (Cancel path).
	remove(ev *Event)
	// len returns the number of pending nodes.
	len() int
}

// QueueKind selects the event-queue implementation behind an Engine.
type QueueKind int

const (
	// QueueCalendar is a Brown-style dynamic calendar queue: O(1)
	// amortized schedule/fire at any queue size. The default.
	QueueCalendar QueueKind = iota
	// QueueHeap is the original container/heap binary heap — the
	// reference implementation the others are property-tested against.
	QueueHeap
	// QueueLadder is a two-tier ladder queue (sorted bottom rung fed
	// from an unsorted overflow tier) kept for benchmarking.
	QueueLadder
)

// QueueKinds lists every available queue implementation.
func QueueKinds() []QueueKind { return []QueueKind{QueueCalendar, QueueHeap, QueueLadder} }

// String names the queue kind.
func (k QueueKind) String() string {
	switch k {
	case QueueCalendar:
		return "calendar"
	case QueueHeap:
		return "heap"
	case QueueLadder:
		return "ladder"
	}
	return fmt.Sprintf("QueueKind(%d)", int(k))
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	q       eventQueue
	seq     uint64
	stopped bool
	fired   uint64

	// free is the event-node freelist. A full run schedules millions of
	// events (arrivals, stage-1 interrupts, completion reschedules,
	// deferred frequency writes); recycling nodes on fire and on cancel
	// keeps the inner loop off the allocator. Determinism is unaffected:
	// ordering is (At, seq) and seq always comes fresh from the engine
	// counter, never from the recycled node.
	free []*Event

	// Trace, when non-nil, is called for every event fired.
	Trace func(at Time, name string)
}

// NewEngine returns an empty engine at time zero backed by the default
// queue (calendar — the benchmark winner; see queue_bench_test.go).
func NewEngine() *Engine {
	return NewEngineWithQueue(QueueCalendar)
}

// NewEngineWithQueue returns an empty engine backed by the given queue
// implementation. All kinds obey the identical ordering contract; non-
// default kinds exist for differential testing and benchmarking.
func NewEngineWithQueue(k QueueKind) *Engine {
	e := &Engine{}
	switch k {
	case QueueHeap:
		e.q = &heapQueue{}
	case QueueLadder:
		e.q = newLadderQueue()
	default:
		e.q = newCalendarQueue()
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.q.len() }

// schedule pulls a node off the freelist (or allocates one) and stamps it
// with a fresh sequence number. The caller fills the callback and pushes.
func (e *Engine) schedule(at Time, name string) *Event {
	if at < e.now {
		at = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++ // invalidate refs to the node's previous life
	} else {
		ev = &Event{}
	}
	ev.At, ev.Name, ev.seq = at, name, e.seq
	e.seq++
	return ev
}

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the present instant) fires the event at the current time but after all
// currently pending events at that time. It returns a ref so the caller
// can cancel the event.
func (e *Engine) At(at Time, name string, fn func(*Engine)) EventRef {
	ev := e.schedule(at, name)
	ev.Do = fn
	e.q.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, name string, fn func(*Engine)) EventRef {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// AtCall schedules the closure-free callback form: fn is a long-lived func
// value (typically bound once per worker/core/generator) and arg the
// per-fire argument (typically a pointer, which boxes into the interface
// without allocating). Hot paths use it to schedule without creating a
// closure per event.
func (e *Engine) AtCall(at Time, name string, fn func(*Engine, any), arg any) EventRef {
	ev := e.schedule(at, name)
	ev.do2, ev.arg = fn, arg
	e.q.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// AfterCall is AtCall relative to the current time.
func (e *Engine) AfterCall(d Duration, name string, fn func(*Engine, any), arg any) EventRef {
	if d < 0 {
		d = 0
	}
	return e.AtCall(e.now+d, name, fn, arg)
}

// Cancel removes a scheduled event. Cancelling a zero ref, an
// already-fired, an already-cancelled, or a stale (recycled-node) ref is a
// no-op — a ref can only ever cancel the exact instance it was created
// for.
func (e *Engine) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.gen != ref.gen || ev.index < 0 {
		return
	}
	e.q.remove(ev)
	ev.index = -2
	ev.Do, ev.do2, ev.arg, ev.Name = nil, nil, nil, "" // drop callback references for GC
	e.free = append(e.free, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock passes until (events at exactly until still fire).
// It returns the virtual time at which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		next := e.q.popLE(until)
		if next == nil {
			if e.q.len() > 0 {
				// Pending events exist but the earliest is past until.
				// This branch runs even when until < now: the caller
				// rewound the clock, and future At/After calls clamp to
				// the rewound time.
				e.now = until
			} else if e.now < until && !math.IsInf(float64(until), 1) {
				e.now = until
			}
			return e.now
		}
		e.now = next.At
		e.fired++
		if e.Trace != nil {
			e.Trace(e.now, next.Name)
		}
		do, do2, arg := next.Do, next.do2, next.arg
		// Recycle before running the callback: a nested After can reuse
		// the still-hot node immediately. Refs to the fired instance stay
		// safe via the generation stamp.
		next.Do, next.do2, next.arg, next.Name = nil, nil, nil, ""
		e.free = append(e.free, next)
		if do != nil {
			do(e)
		} else {
			do2(e, arg)
		}
	}
	return e.now
}

// RunAll executes every pending event regardless of time. Useful in tests.
func (e *Engine) RunAll() Time { return e.Run(Time(math.Inf(1))) }
