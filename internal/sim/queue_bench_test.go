package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkQueue compares the three queue implementations head to head on
// the shapes that matter: the sparse schedule→fire cycle, steady-state
// churn while holding N pending events (the fleet simulator's regime), and
// schedule→cancel. The winner of the hold-N columns is NewEngine's default.
func BenchmarkQueue(b *testing.B) {
	for _, k := range QueueKinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			b.Run("afterFire", func(b *testing.B) {
				e := NewEngineWithQueue(k)
				fn := func(*Engine) {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.After(1, "b", fn)
					e.RunAll()
				}
			})
			for _, hold := range []int{64, 1024, 32768} {
				hold := hold
				b.Run(holdName(hold), func(b *testing.B) {
					e := NewEngineWithQueue(k)
					rng := rand.New(rand.NewSource(1))
					fn := func(*Engine) {}
					for i := 0; i < hold; i++ {
						e.After(Duration(rng.ExpFloat64()), "h", fn)
					}
					b.ReportAllocs()
					b.ResetTimer()
					// Replace the minimum with a fresh arrival each step:
					// queue size stays at hold, clock advances.
					for i := 0; i < b.N; i++ {
						e.After(Duration(rng.ExpFloat64()), "h", fn)
						e.Run(e.Now()) // fire everything due now
						for e.Pending() > hold {
							e.Run(e.Now() + Duration(rng.ExpFloat64()*1e-3))
						}
					}
				})
			}
			b.Run("scheduleCancel", func(b *testing.B) {
				e := NewEngineWithQueue(k)
				fn := func(*Engine) {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := e.After(1, "b", fn)
					e.Cancel(ev)
				}
			})
		})
	}
}

func holdName(n int) string {
	switch n {
	case 64:
		return "hold64"
	case 1024:
		return "hold1k"
	default:
		return "hold32k"
	}
}
