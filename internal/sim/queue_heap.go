package sim

import "container/heap"

// heapQueue is the original container/heap implementation — the reference
// ordering the calendar and ladder queues are differential-tested against.
// ev.index is the heap slot.
type heapQueue struct {
	h eventHeap
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (q *heapQueue) push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) popLE(until Time) *Event {
	if len(q.h) == 0 || q.h[0].At > until {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) remove(ev *Event) { heap.Remove(&q.h, ev.index) }

func (q *heapQueue) len() int { return len(q.h) }
