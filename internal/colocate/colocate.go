// Package colocate models the multi-tenant scenarios of §VII-E and
// §VII-G: a PARTIES-style application-level resource manager that first
// finds a feasible core/frequency allocation for colocated LC services
// (after which ReTail is layered on top for per-request savings, Fig 13),
// and a batch-job interference injector that perturbs service times to
// exercise ReTail's model-drift detection and online retraining (Fig 14).
package colocate

import (
	"fmt"

	"retail/internal/core"
	"retail/internal/cpu"
	"retail/internal/manager"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/stats"
	"retail/internal/workload"
)

// Tenant is one colocated LC application with its own worker pool (its
// core allocation from the node-level manager) and load.
type Tenant struct {
	Cal     *core.Calibration
	Workers int
	RPS     float64
	Seed    int64

	Server  *server.Server
	Gen     *workload.Generator
	Lat     *stats.LatencyTracker
	manager manager.Manager
}

// Node hosts multiple tenants on one socket-equivalent power budget. Each
// tenant gets a private server (its partitioned cores); socket power is
// the sum over tenants plus one shared uncore.
type Node struct {
	Tenants []*Tenant
	uncoreW float64
	start   sim.Time
}

// NewNode builds the tenants' servers side by side.
func NewNode(tenants []*Tenant, platform core.Platform) *Node {
	n := &Node{uncoreW: platform.Power.UncoreW}
	for i, t := range tenants {
		pm := platform.Power
		pm.UncoreW = 0 // shared uncore accounted once at node level
		t.Server = server.New(server.Config{
			App:     t.Cal.App,
			Workers: t.Workers,
			Grid:    platform.Grid,
			Power:   pm,
			Trans:   platform.Trans,
			Seed:    platform.Seed + int64(i)*101,
		})
		t.Lat = stats.NewLatencyTracker(4096, true)
		srv := t.Server
		lat := t.Lat
		srv.CompletedSink = func(_ *sim.Engine, r *workload.Request) {
			lat.Add(float64(r.Sojourn()))
		}
		n.Tenants = append(n.Tenants, t)
	}
	return n
}

// Start attaches the paper's "PARTIES phase": every tenant runs under a
// coarse application-level allocation (all its cores at one frequency that
// meets QoS — conservatively, max frequency) and traffic begins.
func (n *Node) Start(e *sim.Engine) {
	for i, t := range n.Tenants {
		mf := manager.NewMaxFreq()
		mf.Attach(e, t.Server)
		t.manager = mf
		t.Gen = workload.NewGenerator(t.Cal.App, t.RPS, t.Seed+int64(i), t.Server.Submit)
		t.Gen.Start(e)
	}
}

// EnableReTail switches one tenant from the coarse allocation to ReTail's
// per-request management (the paper triggers this during PARTIES'
// downsize phase at t = 5 s in Fig 13).
func (n *Node) EnableReTail(e *sim.Engine, tenantIdx int) (*manager.ReTail, error) {
	if tenantIdx < 0 || tenantIdx >= len(n.Tenants) {
		return nil, fmt.Errorf("colocate: no tenant %d", tenantIdx)
	}
	t := n.Tenants[tenantIdx]
	rt := t.Cal.NewReTail()
	rt.Attach(e, t.Server)
	t.manager = rt
	return rt, nil
}

// ResetEnergy restarts node power accounting.
func (n *Node) ResetEnergy(e *sim.Engine) {
	n.start = e.Now()
	for _, t := range n.Tenants {
		t.Server.Socket.ResetEnergy(e.Now())
	}
}

// PowerW returns instantaneous-average node power since the last reset.
func (n *Node) PowerW(now sim.Time) float64 {
	total := n.uncoreW
	for _, t := range n.Tenants {
		total += t.Server.Socket.AveragePowerW(now)
	}
	return total
}

// Interferer injects the §VII-G batch job: from Start on, every tenant's
// service times inflate by Factor (shared cores and LLC ways are split
// with the batch job).
type Interferer struct {
	Start  sim.Time
	Factor float64
}

// Arm schedules the interference onset on the given servers.
func (iv Interferer) Arm(e *sim.Engine, servers ...*server.Server) {
	for _, s := range servers {
		s := s
		e.At(iv.Start, "colocate.interfere", func(en *sim.Engine) {
			s.SetInterference(en, iv.Factor)
		})
	}
}

// MeanLevel reports the average effective frequency level across a
// server's cores — the "frequency of a core running Moses" trace in
// Fig 14.
func MeanLevel(s *server.Server) float64 {
	sum := 0.0
	for _, c := range s.Socket.Cores {
		sum += float64(c.EffectiveLevel())
	}
	return sum / float64(len(s.Socket.Cores))
}

// GridOf returns the grid used by a server (helper for trace rendering).
func GridOf(s *server.Server) *cpu.Grid { return s.Socket.Cores[0].Grid() }
