package colocate

import (
	"testing"

	"retail/internal/core"
	"retail/internal/sim"
	"retail/internal/workload"
)

func testNode(t *testing.T) (*Node, core.Platform) {
	t.Helper()
	platform := core.DefaultPlatform().WithWorkers(4)
	mk := func(name string, workers int, seed int64) *Tenant {
		app := workload.ByName(name)
		cal, err := core.Calibrate(app, platform.WithWorkers(workers), 300, 1)
		if err != nil {
			t.Fatal(err)
		}
		rps := core.CalibrateMaxLoad(app, platform.WithWorkers(workers), 1) * 0.4
		return &Tenant{Cal: cal, Workers: workers, RPS: rps, Seed: seed}
	}
	a := mk("moses", 2, 5)
	b := mk("silo", 2, 6)
	return NewNode([]*Tenant{a, b}, platform), platform
}

func TestNodeConstruction(t *testing.T) {
	node, platform := testNode(t)
	if len(node.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(node.Tenants))
	}
	total := 0
	for _, tn := range node.Tenants {
		if tn.Server == nil || tn.Lat == nil {
			t.Fatal("tenant not wired")
		}
		total += len(tn.Server.Socket.Cores)
	}
	if total != platform.Workers {
		t.Fatalf("cores = %d, want %d", total, platform.Workers)
	}
}

func TestNodeTrafficAndPower(t *testing.T) {
	node, _ := testNode(t)
	e := sim.NewEngine()
	node.Start(e)
	e.At(0.5, "reset", func(en *sim.Engine) { node.ResetEnergy(en) })
	e.Run(3)
	for _, tn := range node.Tenants {
		tn.Gen.Stop()
		if tn.Lat.Count() == 0 {
			t.Fatalf("tenant %s served no requests", tn.Cal.App.Name())
		}
	}
	p := node.PowerW(e.Now())
	// 4 busy-ish cores plus uncore: more than uncore alone, less than an
	// absurd bound.
	if p < 18 || p > 80 {
		t.Fatalf("node power = %v W", p)
	}
}

func TestEnableReTailValidation(t *testing.T) {
	node, _ := testNode(t)
	e := sim.NewEngine()
	node.Start(e)
	if _, err := node.EnableReTail(e, -1); err == nil {
		t.Fatal("negative tenant accepted")
	}
	if _, err := node.EnableReTail(e, 99); err == nil {
		t.Fatal("out-of-range tenant accepted")
	}
	rt, err := node.EnableReTail(e, 0)
	if err != nil || rt == nil {
		t.Fatalf("EnableReTail: %v", err)
	}
}

func TestEnableReTailReducesPower(t *testing.T) {
	node, _ := testNode(t)
	e := sim.NewEngine()
	node.Start(e)
	var before, after float64
	e.At(1, "m0", func(en *sim.Engine) { node.ResetEnergy(en) })
	e.At(4, "switch", func(en *sim.Engine) {
		before = node.PowerW(en.Now())
		if _, err := node.EnableReTail(en, 0); err != nil {
			t.Error(err)
		}
		if _, err := node.EnableReTail(en, 1); err != nil {
			t.Error(err)
		}
		node.ResetEnergy(en)
	})
	e.Run(10)
	after = node.PowerW(e.Now())
	for _, tn := range node.Tenants {
		tn.Gen.Stop()
	}
	if after >= before {
		t.Fatalf("ReTail did not reduce node power: %v → %v", before, after)
	}
	// Both tenants still meet QoS.
	for _, tn := range node.Tenants {
		q := tn.Cal.App.QoS()
		// Only score post-switch completions: use the window tracker's
		// overall percentile as a conservative stand-in.
		if tail, ok := tn.Lat.Percentile(q.Percentile); ok && tail > float64(q.Latency)*1.05 {
			t.Errorf("%s: tail %v exceeds QoS %v", tn.Cal.App.Name(), tail, q.Latency)
		}
	}
}

func TestInterfererInflatesService(t *testing.T) {
	node, _ := testNode(t)
	e := sim.NewEngine()
	node.Start(e)
	Interferer{Start: 1, Factor: 2}.Arm(e, node.Tenants[0].Server)
	e.Run(2)
	if got := node.Tenants[0].Server.Interference(); got != 2 {
		t.Fatalf("interference = %v, want 2", got)
	}
	if got := node.Tenants[1].Server.Interference(); got != 1 {
		t.Fatalf("unarmed tenant interference = %v, want 1", got)
	}
}

func TestMeanLevel(t *testing.T) {
	node, _ := testNode(t)
	e := sim.NewEngine()
	srv := node.Tenants[0].Server
	// Cores boot at max level (11).
	if got := MeanLevel(srv); got != 11 {
		t.Fatalf("mean level = %v, want 11", got)
	}
	srv.Socket.Cores[0].SetLevelImmediate(e, 1)
	want := (1.0 + 11.0) / 2
	if got := MeanLevel(srv); got != want {
		t.Fatalf("mean level = %v, want %v", got, want)
	}
	if GridOf(srv) == nil {
		t.Fatal("GridOf nil")
	}
}
