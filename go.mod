module retail

go 1.22
