// Smoke test: build every example and command, then execute each with a
// tiny workload. This is the "does the repo still run end-to-end" gate —
// it catches broken flag parsing, panics on startup and bit-rotted
// example code that unit tests never touch. Skipped under -short.
package main

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// smokeTargets lists every main package with the arguments that give the
// fastest meaningful run (measured well under 10 s each).
var smokeTargets = []struct {
	pkg  string // package path relative to the module root
	args []string
}{
	{"./examples/quickstart", nil},
	{"./examples/colocation", nil},
	{"./examples/database", nil},
	{"./examples/multitier", nil},
	{"./examples/replay", nil},
	{"./examples/websearch", nil},
	{"./cmd/retail-sim", []string{"-workers", "4", "-duration", "2", "-samples", "200"}},
	{"./cmd/retail-characterize", []string{"-quick"}},
	{"./cmd/retail-bench", []string{"-list"}},
	// Exercises the full wall-clock path including the Prometheus
	// exposition server (bound to an ephemeral port).
	{"./cmd/retail-live", []string{
		"-rps", "200", "-duration", "500ms", "-metrics-addr", "127.0.0.1:0",
	}},
	// Replays a compressed fault plan against the live runtime: injector,
	// degradation machinery and the report path all run end-to-end.
	{"./cmd/retail-chaos", []string{
		"-plan", "overload-burst", "-seconds", "4", "-scale", "0.25", "-samples", "200",
	}},
	// A two-dispatcher, one-policy fleet sweep at quick scale: the whole
	// cluster layer (routing, per-node managers, sweep merge) end-to-end.
	{"./cmd/retail-cluster", []string{
		"-quick", "-loads", "0.5", "-policies", "retail",
		"-dispatchers", "round-robin,global-jsq", "-requests", "1200",
	}},
}

func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs every binary")
	}
	bindir := t.TempDir()
	for _, tgt := range smokeTargets {
		tgt := tgt
		name := filepath.Base(tgt.pkg)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, name+"-"+filepath.Base(filepath.Dir(tgt.pkg)))
			build := exec.Command("go", "build", "-o", bin, tgt.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", tgt.pkg, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin, tgt.args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", name, tgt.args, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}
