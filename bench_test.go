// Benchmark harness: one testing.B per paper table/figure. Each benchmark
// regenerates its artifact with the Quick experiment configuration and
// reports domain metrics (power savings, RMSE ratios, drop rates) via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report. Run cmd/retail-bench (without -quick) for the
// paper-resolution sweeps.
package main

import (
	"math"
	"math/rand"
	"testing"

	"retail/internal/experiments"
	"retail/internal/stats"
	"retail/internal/telemetry"
)

func quickCfg() experiments.Config { return experiments.Quick() }

func BenchmarkFig01ServiceVsSojourn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.P99Sojourn/last.MeanSvc, "p99-sojourn/svc")
	}
}

func BenchmarkFig02Table02ServiceCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		little := 0
		for _, a := range res.Apps {
			if a.LittleVariant {
				little++
			}
		}
		b.ReportMetric(float64(little), "little-variation-apps")
	}
}

func BenchmarkFig03LengthInterpretations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var good, decoy float64
		for _, row := range res.Rows {
			if row.Correlates {
				good += row.Pearson
			} else {
				decoy += row.Pearson
			}
		}
		b.ReportMetric(good/2, "mean-rho-real")
		b.ReportMetric(decoy/2, "mean-rho-decoy")
	}
}

func BenchmarkFig04PerTypeCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05AppFeatureCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		minRho := 1.0
		for _, row := range res.Rows {
			if row.Pearson < minRho {
				minRho = row.Pearson
			}
		}
		b.ReportMetric(minRho, "min-rho")
	}
}

func BenchmarkFig06Lateness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(quickCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable04ModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		var lrTrain, nnTrain float64
		for _, row := range res.Rows {
			switch row.Model {
			case "LR":
				lrTrain += row.TrainTime.Seconds()
			case "NN-G":
				nnTrain += row.TrainTime.Seconds()
			}
		}
		if lrTrain > 0 {
			b.ReportMetric(nnTrain/lrTrain, "nn/lr-train-ratio")
		}
	}
}

func BenchmarkFig08FitCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		// LR's curvature is zero to machine precision (it is a line), so
		// report absolute roughness for the two NN fits instead of a ratio.
		b.ReportMetric(res.NNGRoughness*1e3, "nng-roughness-ms")
		b.ReportMetric(res.NNTRoughness*1e3, "nnt-roughness-ms")
	}
}

func BenchmarkFig09TrainingSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, a := range res.Apps {
			last := a.Points[len(a.Points)-1].R2
			if last < worst {
				worst = last
			}
		}
		b.ReportMetric(worst, "worst-R2-at-N1000")
	}
}

// BenchmarkFig11* regenerate the headline power/drop/tail sweep, one
// benchmark per panel, on a representative application subset (run
// cmd/retail-bench for all seven).

func fig11(b *testing.B, apps []string) *experiments.Fig11Result {
	b.Helper()
	res, err := experiments.Fig11(quickCfg(), apps)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig11PowerXapian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11(b, []string{"xapian"})
		b.ReportMetric(res.Apps[0].AvgSavingVsRubik*100, "saving-vs-rubik-%")
		b.ReportMetric(res.Apps[0].AvgSavingVsGemini*100, "saving-vs-gemini-%")
	}
}

func BenchmarkFig11PowerMoses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11(b, []string{"moses"})
		b.ReportMetric(res.Apps[0].AvgSavingVsRubik*100, "saving-vs-rubik-%")
	}
}

func BenchmarkFig11DropsGemini(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11(b, []string{"imgdnn"})
		pts := res.Apps[0].Points
		b.ReportMetric(pts[len(pts)-1].DropRate["gemini"]*100, "gemini-drop-at-top-load-%")
	}
}

func BenchmarkFig11TailQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11(b, []string{"shore"})
		met := 0
		for _, p := range res.Apps[0].Points {
			if p.QoSMet["retail"] {
				met++
			}
		}
		b.ReportMetric(float64(met)/float64(len(res.Apps[0].Points))*100, "retail-qos-met-%")
	}
}

func BenchmarkTable05PredictionRMSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig11(b, []string{"xapian"})
		a := res.Apps[0]
		if a.RMSE["retail"] > 0 {
			b.ReportMetric(a.RMSE["rubik"]/a.RMSE["retail"], "rubik/retail-rmse")
			b.ReportMetric(a.RMSE["gemini"]/a.RMSE["retail"], "gemini/retail-rmse")
		}
	}
}

func BenchmarkFig12Decomposition(b *testing.B) {
	cfg := quickCfg()
	cfg.Loads = []float64{0.6}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(cfg, "xapian")
		if err != nil {
			b.Fatal(err)
		}
		var full, reqOnly float64
		for _, c := range res.Cells {
			if c.Mechanism == "lr-alg1" {
				if c.FeatureSpace == "request+app" {
					full = c.PowerW
				} else {
					reqOnly = c.PowerW
				}
			}
		}
		if full > 0 {
			b.ReportMetric((1-full/reqOnly)*100, "app-feature-saving-%")
		}
	}
}

func BenchmarkFig13Colocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SavingPercent*100, "retail-over-parties-saving-%")
	}
}

func BenchmarkFig14DriftRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RecoverySeconds, "recovery-s")
		b.ReportMetric(float64(res.Retrains), "retrains")
	}
}

func BenchmarkAblationMoses(b *testing.B) {
	cfg := quickCfg()
	cfg.Loads = []float64{0.9}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(cfg, "moses")
		if err != nil {
			b.Fatal(err)
		}
		var full, noMon float64
		for _, c := range res.Cells {
			switch c.Variant {
			case "full":
				full = c.PowerW
			case "no-monitor":
				noMon = c.PowerW
			}
		}
		if noMon > 0 {
			b.ReportMetric(full/noMon, "full/no-monitor-power")
		}
	}
}

func BenchmarkLoadSpikeResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadSpike(quickCfg(), "xapian")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CollapseSeconds, "qosprime-collapse-s")
	}
}

func BenchmarkOverheadAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(quickCfg(), "xapian")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MeanDecisionCost)*1e6, "decision-us")
	}
}

// --- telemetry hot path -------------------------------------------------
//
// The acceptance bar for the metrics subsystem is <100 ns per record on
// the hot path: instruments sit inside the live worker loop and the sim
// Complete hook, so a slow Observe would show up as measurement skew.

func BenchmarkCounterInc(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_hist_seconds", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_hist_seconds", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

// TestHistogramQuantileAccuracy cross-checks the log-linear histogram
// against the exact-sample LatencyTracker on a heavy-tailed latency
// distribution: every reported quantile must land within one bucket
// width of the exact value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := telemetry.NewHistogram()
	lt := stats.NewLatencyTracker(0, true)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		// Lognormal-ish service times around a few milliseconds.
		v := 0.002 * math.Exp(0.6*rng.NormFloat64())
		h.Observe(v)
		lt.Add(v)
	}
	for _, q := range []float64{50, 95, 99, 99.9} {
		exact, ok := lt.Percentile(q)
		if !ok {
			t.Fatal("tracker empty")
		}
		got := h.Quantile(q / 100)
		if tol := telemetry.BucketWidthAt(exact); math.Abs(got-exact) > tol {
			t.Errorf("p%g: histogram %.6f vs exact %.6f (tolerance %.6f)", q, got, exact, tol)
		}
	}
}
