# ReTail reproduction — common developer entry points.
#
#   make build   compile every package and command
#   make test    tier-1 test suite (what CI gates on)
#   make race    full suite under the race detector
#   make vet     static analysis
#   make bench   telemetry hot-path + paper-table benchmarks
#   make smoke   build-and-run every example and command briefly
#   make check   build + vet + test (the pre-commit bundle)

GO ?= go

.PHONY: build test race vet bench smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench 'Benchmark(Counter|Gauge|Histogram|Snapshot)' -benchmem -run '^$$' ./internal/telemetry ./
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

smoke:
	$(GO) test -run TestSmoke -v .

check: build vet test

clean:
	$(GO) clean ./...
