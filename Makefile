# ReTail reproduction — common developer entry points.
#
#   make build   compile every package and command
#   make test    tier-1 test suite (what CI gates on)
#   make race    full suite under the race detector
#   make vet     static analysis
#   make bench   telemetry hot-path + paper-table benchmarks
#   make bench-check     hot-path micro-benchmarks once under -race (CI
#                        smoke) + BenchmarkClusterFleet timed and gated
#                        against results/BENCH_cluster.json
#   make bench-baseline  regenerate results/BENCH_*.json via cmd/benchjson
#                        and append to results/BENCH_history.jsonl
#   make trace-check     fixed-seed Chrome trace vs committed golden bytes
#   make trace-golden    rewrite the golden after an intentional format change
#   make chaos-check     fault-injection suite: injector contracts, degradation
#                        paths, live replays, sim matrix vs committed golden
#   make chaos-golden    rewrite the chaos golden after an intentional change
#   make parity-check    replay parity under -race: one recorded simulator
#                        trace through the live runtime's decider must yield
#                        byte-identical decisions (DESIGN.md §10)
#   make parity-golden   rewrite the parity decision-stream golden
#   make cluster-check   fleet sweep determinism: dispatcher streams, fleet
#                        runs, sweep table vs golden + multi-seed SHA-256
#   make cluster-golden  rewrite the fleet sweep goldens
#   make obs-check       observability plane: seeded report vs committed
#                        golden (byte-stable modulo provenance), ledger
#                        reconciliation + pure-observer pins, zero-alloc
#                        decide with ledger, scrape-under-sweep race,
#                        BENCH_history.jsonl schema validation
#   make obs-golden      rewrite the report golden after an intentional change
#   make workload-check  cohort workload gate: arrival-process statistics,
#                        trace v2 header schema, fixed-seed cohort sweep vs
#                        committed golden (per-spec table, per-SLO-class
#                        latency, trace + decision SHA-256), -parallel 1 vs 8
#                        byte-identity, record→replay→re-record round trips
#   make workload-golden rewrite the workload sweep golden after an
#                        intentional change
#   make tune-check      policy-params + digital-twin gate: params schema
#                        round-trip/SHA pins, search-spec enumeration, and
#                        the fixed-seed retail-tune winners table vs its
#                        committed golden with -parallel 1 vs 8 byte
#                        identity and exact winner-replay reproduction
#   make tune-golden     rewrite the tune winners golden after an
#                        intentional change
#   make smoke   build-and-run every example and command briefly
#   make check   build + vet + test (the pre-commit bundle)

GO ?= go

# The hot-path micro-benchmarks tracked across PRs: the event loop
# (freelist), Algorithm 1 decisions (prediction memo), the sweep runner
# and the fleet simulator. bench-check runs each exactly once under the
# race detector — a correctness smoke, not a measurement — and then
# times BenchmarkClusterFleet for real and gates it against the
# committed baseline. The gate tolerance (benchjson defaults: 3x on
# ns/op, 1.25x on allocs/op) is deliberately loose on wall time —
# cross-machine clocks and CPU governors add noise — but the PR-7
# optimization was >2x on ns and >40x on allocs, so even the loose gate
# catches a full relapse. bench-baseline produces the committed JSON
# trajectories from a real timed run and appends each refresh to the
# append-only results/BENCH_history.jsonl.
HOT_BENCH = 'Benchmark(Engine(AfterFire|ScheduleCancel)|RetailDecide|Sweep|Cluster)'
HOT_PKGS  = ./internal/sim ./internal/manager ./internal/experiments ./internal/cluster

.PHONY: build test race vet bench bench-check bench-baseline trace-check trace-golden chaos-check chaos-golden parity-check parity-golden cluster-check cluster-golden obs-check obs-golden workload-check workload-golden tune-check tune-golden smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench 'Benchmark(Counter|Gauge|Histogram|Snapshot)' -benchmem -run '^$$' ./internal/telemetry ./
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

bench-check:
	$(GO) test -race -run '^$$' -bench $(HOT_BENCH) -benchtime=1x $(HOT_PKGS)
	$(GO) test -run '^$$' -bench 'BenchmarkClusterFleet$$' -benchmem ./internal/cluster | $(GO) run ./cmd/benchjson -gate results/BENCH_cluster.json

bench-baseline:
	$(GO) test -run '^$$' -bench $(HOT_BENCH) -benchmem ./internal/sim ./internal/manager ./internal/experiments | $(GO) run ./cmd/benchjson -history results/BENCH_history.jsonl > results/BENCH_sweep.json
	$(GO) test -run '^$$' -bench 'BenchmarkCluster' -benchmem ./internal/cluster | $(GO) run ./cmd/benchjson -history results/BENCH_history.jsonl > results/BENCH_cluster.json

# The Chrome trace exporter's bytes are a contract (Perfetto tooling,
# diffable artifacts): a fixed-seed simulation must serialize identically
# on every run. trace-golden rewrites the committed file after an
# intentional format change.
trace-check:
	$(GO) test -run 'TestChromeTrace(Golden|Deterministic)' -count=1 ./internal/trace

trace-golden:
	$(GO) test -run TestChromeTraceGolden -count=1 ./internal/trace -update

# The fault-injection and graceful-degradation suite (DESIGN.md §9):
# injector determinism and zero-alloc contracts, DVFS retry/fallback and
# shedding paths, fixed-seed live replays of the built-in plans, and the
# simulator chaos matrix compared byte-for-byte against its golden.
# chaos-golden rewrites the committed matrix after an intentional change.
CHAOS_TESTS = 'TestInjector|TestFault|TestPlan|TestCorrupting|TestApplyLevel|TestSysfsBackendReconcile|TestShed|TestClientRetries|TestDeadlineDrop|TestServerExecFault|TestChaos|TestLiveChaos'
chaos-check:
	$(GO) test -count=1 -run $(CHAOS_TESTS) ./internal/fault ./internal/live ./internal/experiments

chaos-golden:
	$(GO) test -run TestChaosSimGolden -count=1 ./internal/experiments -update

# Replay parity (DESIGN.md §10): the simulator adapter records every
# input the shared decision core consumed; replaying the trace through
# the live adapter's decider must reproduce the decision stream
# byte-for-byte, including the negative control proving the check can
# fail. Runs under -race because the live decider is the concurrent one.
parity-check:
	$(GO) test -race -count=1 -run 'TestReplayParity' ./internal/experiments

parity-golden:
	$(GO) test -run TestReplayParity -count=1 ./internal/experiments -update

# The cluster layer's determinism gate: dispatcher placement streams,
# fleet runs and the routing×policy×load sweep table — byte-compared
# against its golden and SHA-256-pinned at two seeds, plus the
# -parallel 1 vs 8 byte-identity check. cluster-golden rewrites both
# goldens after an intentional change.
cluster-check:
	$(GO) test -count=1 -run 'TestDispatcher|TestNewDispatcher|TestRoundRobinDispatch|TestLeastLoadedDispatch|TestGlobalJSQDispatch|TestPowerOfTwoDispatch' ./internal/policy
	$(GO) test -count=1 -run 'TestRunFleet' ./internal/cluster
	$(GO) test -count=1 -run 'TestFleetSweep' ./internal/experiments

cluster-golden:
	$(GO) test -run 'TestFleetSweep(Golden|MultiSeedSHA)' -count=1 ./internal/experiments -update

# The observability plane's gate (DESIGN.md §12): a seeded fleet sweep's
# canonical report must match the committed golden byte-for-byte
# (provenance masked), every joule and violation must reconcile between
# ledger and fleet result, attribution must stay a zero-alloc pure
# observer, /metrics and /debug/fleet must survive concurrent scrapes
# mid-sweep under -race, and the append-only benchmark history must
# parse against the benchjson baseline schema.
obs-check:
	$(GO) test -count=1 -run 'TestFleetReportGolden|TestFleetLedger|TestEnergyByLevelReconciles|TestRetailDecideZeroAllocWithLedger' ./internal/experiments ./internal/cluster ./internal/cpu ./internal/manager
	$(GO) test -race -count=1 -run 'TestMetricsScrapeDuringFleetSweep' ./internal/experiments
	$(GO) test -count=1 -run 'TestBenchHistorySchema|TestHistogramHDREquivalence|TestLogLinear' ./cmd/benchjson ./internal/telemetry ./internal/stats

obs-golden:
	$(GO) test -run TestFleetReportGolden -count=1 ./internal/experiments -update

# The ServeGen-class workload gate (DESIGN.md §13): per-arrival-process
# statistical checks (mean rate, index of dispersion, diurnal phase),
# the trace v2 header schema pin, and the fixed-seed cohort-spec sweep —
# its rendered table (per-spec stats, per-SLO-class latency, canonical
# trace and classed-decision SHA-256 hashes) byte-compared against the
# committed golden, plus -parallel 1 vs 8 byte-identity. Every sweep
# cell internally proves record→replay→re-record byte identity through
# the simulator and classed decision parity through the live decider.
# workload-golden rewrites the golden after an intentional change.
workload-check:
	$(GO) test -count=1 -run 'TestArrival|TestEnvelopePhase|TestSpecValidate|TestBuiltinSpecs|TestCohortDeterminism|TestTraceRoundTrip|TestTraceHeaderSchema' ./internal/workload
	$(GO) test -count=1 -run 'TestWorkloadSweep' ./internal/experiments

workload-golden:
	$(GO) test -run TestWorkloadSweepGolden -count=1 ./internal/experiments -update

# The policy-parameterization and digital-twin gate (DESIGN.md §14):
# params JSON round-trip bit-equality, strict unknown-field rejection,
# the zero-value→historical-default identity, pinned canonical SHAs,
# search-spec enumeration contracts (grid odometer order, seeded random
# determinism, rejection surface), and the fixed-seed retail-tune
# winners table byte-compared against its golden — including -parallel
# 1 vs 8 byte-identity and the exact standalone reproduction of the
# winner's scored metrics from its emitted params.json. tune-golden
# rewrites the winners golden after an intentional change.
tune-check:
	$(GO) test -count=1 -run 'TestParams|TestMonitorGuardBand|TestQuantileFallback' ./internal/policy
	$(GO) test -count=1 -run 'TestSpec|TestTune' ./internal/tune

tune-golden:
	$(GO) test -run TestTuneGolden -count=1 ./internal/tune -update

smoke:
	$(GO) test -run TestSmoke -v .

check: build vet test

clean:
	$(GO) clean ./...
