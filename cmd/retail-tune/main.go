// Command retail-tune closes the digital-twin loop: replay a recorded
// request trace (retail-sim/retail-cluster -record) under every
// candidate of a declared policy-parameter search, score each replay on
// energy × p99 × violations, and emit the winner as a params.json that
// retail-sim, retail-live, retail-cluster and retail-chaos all accept
// via -params.
//
// Usage:
//
//	retail-sim -spec steady-poisson -record run.trace
//	retail-tune -trace run.trace -search search.json -out params.json
//	retail-sim -replay run.trace -params params.json   # reproduce the winner
//	retail-tune -fields                                # list tunable knobs
//
// The run is deterministic: candidates replay concurrently (-parallel)
// but the table, report and winning params are byte-identical at every
// setting — same contract as the repo's other sweeps.
package main

import (
	"flag"
	"fmt"
	"os"

	"retail/internal/nn"
	"retail/internal/tune"
	"retail/internal/workload"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "recorded v2 trace to replay (required)")
		searchPath = flag.String("search", "", "search-spec JSON declaring the axes and bounds (required)")
		mgrName    = flag.String("manager", "retail", "tuned policy: retail, rubik, gemini or eetl")
		workers    = flag.Int("workers", 8, "twin worker cores (match the recording runtime)")
		samples    = flag.Int("samples", 400, "calibration samples per frequency level")
		seed       = flag.Int64("seed", 7, "seed for calibration and service-time jitter")
		parallel   = flag.Int("parallel", 0, "concurrent candidate replays (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any setting")
		quickNN    = flag.Bool("quick-nn", true, "use a small NN when tuning gemini instead of the 5×128")
		outPath    = flag.String("out", "", "file for the winning params.json")
		reportPath = flag.String("report", "", "file for the versioned obs tune report")
		fields     = flag.Bool("fields", false, "list the tunable field paths and exit")
	)
	flag.Parse()

	if *fields {
		for _, f := range tune.FieldNames() {
			fmt.Println(f)
		}
		return
	}
	if *tracePath == "" || *searchPath == "" {
		fmt.Fprintln(os.Stderr, "retail-tune: -trace and -search are required")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := tune.LoadSpec(*searchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
		os.Exit(2)
	}
	trace, err := workload.ReadTraceFile(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
		os.Exit(2)
	}

	var nnCfg *nn.Config
	if *quickNN {
		c := nn.TunedConfig(1, 2, 32, 30, 32)
		nnCfg = &c
	}
	res, err := tune.Run(tune.Config{
		Trace: trace, Spec: spec,
		Manager: *mgrName, Workers: *workers,
		SamplesPerLevel: *samples, Seed: *seed,
		Parallel: *parallel, GeminiNN: nnCfg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())

	if *outPath != "" {
		b, err := res.Winner().Params.CanonicalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (params %s)\n", *outPath, res.Winner().ParamsSHA)
	}
	if *reportPath != "" {
		rep := res.Report(*seed)
		if err := rep.WriteFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "retail-tune: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (report v%d, config %s)\n", *reportPath, rep.Version, rep.ConfigHash)
	}
}
