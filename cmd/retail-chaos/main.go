// Command retail-chaos replays named fault plans against the ReTail
// runtime and prints a degradation report: what was injected, what the
// recovery machinery did about it (retries, fallback pins, sheds,
// deadline drops, client retries), and whether the system came out
// healthy.
//
// Two substrates, matching the fault-site split (DESIGN.md §9):
//
//	retail-chaos -plan overload-burst      # wall-clock live runtime (default)
//	retail-chaos -plan dvfs-flaky -seconds 10 -scale 0.5
//	retail-chaos -sim                      # deterministic simulator matrix
//	retail-chaos -sim -bursty              # same matrix under overload-mmpp arrivals
//	retail-chaos -list                     # show the built-in plans
package main

import (
	"flag"
	"fmt"
	"os"

	"retail/internal/experiments"
	"retail/internal/fault"
	"retail/internal/policy"
	"retail/internal/telemetry"
	"retail/internal/workload"
)

func main() {
	var (
		planName   = flag.String("plan", "overload-burst", "fault plan to replay (see -list)")
		list       = flag.Bool("list", false, "list the built-in fault plans and exit")
		simAll     = flag.Bool("sim", false, "run the deterministic simulator chaos matrix instead of the live runtime")
		bursty     = flag.Bool("bursty", false, "with -sim: drive arrivals from the overload-mmpp cohort spec (correlated bursts)")
		appName    = flag.String("app", "moses", "application model")
		workers    = flag.Int("workers", 2, "live worker goroutines")
		rps        = flag.Float64("rps", 60, "live client request rate (wall clock)")
		seconds    = flag.Float64("seconds", 10, "scenario length on the canonical plan clock")
		scale      = flag.Float64("scale", 0.2, "time compression: wall seconds per canonical second")
		samples    = flag.Int("samples", 300, "calibration samples per frequency level")
		seed       = flag.Int64("seed", 42, "seed for calibration, injection and load")
		metrics    = flag.Bool("metrics", false, "print the final Prometheus scrape after the run")
		paramsPath = flag.String("params", "", "serializable policy params JSON (empty = historical defaults)")
	)
	flag.Parse()

	if *list {
		for _, p := range fault.Plans() {
			fmt.Println(p)
		}
		return
	}

	params, err := policy.LoadParams(*paramsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-chaos: %v\n", err)
		os.Exit(2)
	}

	if *simAll {
		cfg := experiments.Quick()
		cfg.Seed = *seed
		cfg.Params = params
		run := experiments.ChaosAll
		if *bursty {
			run = experiments.ChaosAllBursty
		}
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "retail-chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		return
	}
	if *bursty {
		fmt.Fprintln(os.Stderr, "retail-chaos: -bursty requires -sim")
		os.Exit(2)
	}

	plan, err := fault.PlanByName(*planName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-chaos: %v\n", err)
		os.Exit(2)
	}
	app := workload.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "retail-chaos: unknown -app %q\n", *appName)
		os.Exit(2)
	}
	reg := telemetry.NewRegistry()
	rep, err := experiments.RunLiveChaos(experiments.LiveChaosConfig{
		Plan:            plan,
		App:             app,
		Workers:         *workers,
		RPS:             *rps,
		Seconds:         *seconds,
		TimeScale:       *scale,
		SamplesPerLevel: *samples,
		Seed:            *seed,
		Params:          params,
		Registry:        reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if *metrics {
		fmt.Println()
		if err := reg.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "retail-chaos: scrape: %v\n", err)
			os.Exit(1)
		}
	}
}
