// Command retail-characterize reproduces the paper's §III workload
// characterization (Figs 1–6, Table II): service-time distributions,
// which request/application features correlate with latency, and the
// lateness of application features. It is the "look before you manage"
// step that motivates ReTail's design.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"retail/internal/experiments"
	"retail/internal/features"
	"retail/internal/workload"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced sample counts")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed

	if r, err := experiments.Fig2(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}
	if r, err := experiments.Fig1(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}
	if r, err := experiments.Fig3(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}
	if r, err := experiments.Fig4(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}
	if r, err := experiments.Fig5(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}
	if r, err := experiments.Fig6(cfg); err == nil {
		fmt.Println(r.Render())
	} else {
		log.Fatal(err)
	}

	// Bonus: the end-to-end feature-selection verdict per application.
	fmt.Println("Feature selection (§IV) per application")
	for _, app := range workload.All() {
		ds := datasetFor(app, cfg)
		sel, err := features.Select(ds, features.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		specs := app.FeatureSpecs()
		names := make([]string, 0, len(sel.Selected))
		for _, j := range sel.Selected {
			names = append(names, specs[j].Name)
		}
		fmt.Printf("  %-9s selected %v  (combined CD %.3f)\n", app.Name(), names, sel.CombinedCD)
	}
}

func datasetFor(app workload.App, cfg experiments.Config) features.Dataset {
	ds := features.Dataset{Specs: app.FeatureSpecs()}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.SamplesPerLevel; i++ {
		r := app.Generate(rng)
		ds.X = append(ds.X, r.Features)
		ds.Service = append(ds.Service, float64(r.ServiceBase))
	}
	return ds
}
