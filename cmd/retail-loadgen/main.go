// retail-loadgen drives an open-loop Poisson load at a retail-live
// server and prints an HDR latency report. Unlike the closed-loop client
// built into retail-live, the generator never waits for responses before
// sending the next request, so server-side queueing shows up in the
// measured tail instead of silently throttling the offered rate
// (coordinated omission).
//
// Usage:
//
//	retail-loadgen -addr 127.0.0.1:7077 -app xapian -rps 200 -duration 10s
//	retail-loadgen -selfhost -rps 140000 -conns 12    # loopback saturation demo
//
// -selfhost starts an in-process server with a no-op executor and
// head-only decisions, making the transport — not the policy or the
// (absent) work — the measured path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"retail/internal/cpu"
	"retail/internal/live"
	"retail/internal/obs"
	"retail/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", "", "server address (omit with -selfhost)")
		appName  = flag.String("app", "xapian", "application model supplying the feature distribution")
		rps      = flag.Float64("rps", 1000, "aggregate offered request rate")
		conns    = flag.Int("conns", 8, "client connections (rate splits evenly)")
		duration = flag.Duration("duration", 5*time.Second, "send window")
		drain    = flag.Duration("drain", 2*time.Second, "wait for in-flight responses after the window")
		seed     = flag.Int64("seed", 1, "generator seed")
		selfhost = flag.Bool("selfhost", false, "start an in-process no-op server and load it over loopback")
		report   = flag.String("report", "", "file for the versioned obs run report")
	)
	flag.Parse()

	app := workload.ByName(*appName)
	if app == nil {
		log.Printf("unknown -app %q (try xapian, moses, …)", *appName)
		flag.Usage()
		os.Exit(2)
	}

	target := *addr
	if *selfhost {
		grid := cpu.DefaultGrid()
		srv, err := live.NewServer(live.ServerConfig{
			Addr:      "127.0.0.1:0",
			Workers:   runtime.NumCPU(),
			QoS:       app.QoS(),
			Predictor: flatPredictor(1e-6),
			Backend:   live.NewMockBackend(grid),
			Exec:      func(live.Request, cpu.Level) {},
			HeadOnly:  true,
			AppName:   app.Name(),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.Start()
		defer srv.Close()
		target = srv.Addr()
		log.Printf("selfhost server on %s (%d workers, no-op executor)", target, runtime.NumCPU())
	}
	if target == "" {
		log.Print("need -addr or -selfhost")
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("open-loop %s: %.0f RPS over %d conns for %v", app.Name(), *rps, *conns, *duration)
	res, err := live.RunLoad(live.LoadConfig{
		Addr: target, App: app,
		RPS: *rps, Conns: *conns, Duration: *duration,
		Seed: *seed, DrainTimeout: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report())

	if *report != "" {
		q := func(p float64) float64 { return time.Duration(res.Latency.Quantile(p)).Seconds() }
		rep := obs.NewReport("loadgen", *seed, obs.HashConfig("loadgen", app.Name(),
			*rps, *conns, duration.String()))
		rep.Loadgen = &obs.LoadgenReport{
			App: app.Name(), Addr: target, Conns: *conns,
			Duration:   duration.Seconds(),
			Sent:       res.Sent,
			Completed:  res.Completed,
			Dropped:    res.Dropped,
			Unanswered: res.Unanswered,
			OfferedRPS: res.OfferedRPS,
			SentRPS:    res.SentRPS,
			ElapsedS:   res.Elapsed.Seconds(),
			LatencyS: obs.LatencyQuantiles{
				Min: time.Duration(res.Latency.Min()).Seconds(),
				P50: q(0.50), P90: q(0.90), P99: q(0.99),
				P999: q(0.999), P9999: q(0.9999),
				Max: time.Duration(res.Latency.Max()).Seconds(),
			},
		}
		if err := rep.WriteFile(*report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report      %s (v%d, config %s)\n", *report, rep.Version, rep.ConfigHash)
	}
}

// flatPredictor is the selfhost stand-in for a trained model: a constant
// tiny service time, so decisions always land on the lowest level and
// the DVFS write coalescer elides every backend call after the first.
type flatPredictor float64

func (p flatPredictor) Predict(lvl cpu.Level, f []float64) float64 { return float64(p) }
