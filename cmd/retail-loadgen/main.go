// retail-loadgen drives an open-loop Poisson load at a retail-live
// server and prints an HDR latency report. Unlike the closed-loop client
// built into retail-live, the generator never waits for responses before
// sending the next request, so server-side queueing shows up in the
// measured tail instead of silently throttling the offered rate
// (coordinated omission).
//
// Usage:
//
//	retail-loadgen -addr 127.0.0.1:7077 -app xapian -rps 200 -duration 10s
//	retail-loadgen -selfhost -rps 140000 -conns 12    # loopback saturation demo
//	retail-loadgen -selfhost -spec slo-mix -record run.trace   # cohort schedule, recorded
//	retail-loadgen -selfhost -replay run.trace                 # same wire schedule again
//
// -selfhost starts an in-process server with a no-op executor and
// head-only decisions, making the transport — not the policy or the
// (absent) work — the measured path. With -spec the send schedule is
// pre-drawn from the cohort spec (workload.RecordTrace), so -record and
// a later -replay offer byte-identical request sequences; latency is
// then reported per SLO class.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"retail/internal/cpu"
	"retail/internal/live"
	"retail/internal/obs"
	"retail/internal/policy"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", "", "server address (omit with -selfhost)")
		appName    = flag.String("app", "xapian", "application model supplying the feature distribution")
		rps        = flag.Float64("rps", 1000, "aggregate offered request rate")
		conns      = flag.Int("conns", 8, "client connections (rate splits evenly)")
		duration   = flag.Duration("duration", 5*time.Second, "send window")
		drain      = flag.Duration("drain", 2*time.Second, "wait for in-flight responses after the window")
		seed       = flag.Int64("seed", 1, "generator seed")
		selfhost   = flag.Bool("selfhost", false, "start an in-process no-op server and load it over loopback")
		report     = flag.String("report", "", "file for the versioned obs run report")
		specName   = flag.String("spec", "", "cohort workload spec: a builtin name ("+strings.Join(workload.BuiltinSpecNames(), ", ")+") or a JSON file; pre-draws the wire schedule")
		recordPath = flag.String("record", "", "write the pre-drawn schedule to this v2 trace file (requires -spec)")
		replayPath = flag.String("replay", "", "send a recorded v2 trace's schedule instead of generating one (excludes -spec/-record)")
	)
	flag.Parse()

	// Validate the -spec/-record/-replay combinations and load their
	// inputs before any listener binds or connection dials, so a bad
	// invocation never touches the network.
	if *specName != "" && *replayPath != "" {
		log.Fatal("-spec and -replay are mutually exclusive")
	}
	if *recordPath != "" && *specName == "" {
		log.Fatal("-record requires -spec (only generated schedules are recorded)")
	}
	var appSet, rpsSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "app":
			appSet = true
		case "rps":
			rpsSet = true
		}
	})
	var trace *workload.Trace
	switch {
	case *specName != "":
		spec, err := workload.LoadSpec(*specName)
		if err != nil {
			log.Fatal(err)
		}
		specApp, err := spec.SingleApp()
		if err != nil {
			log.Fatal(err)
		}
		if appSet && specApp.Name() != *appName {
			log.Fatalf("-spec %q targets app %q but -app is %q", *specName, specApp.Name(), *appName)
		}
		*appName = specApp.Name()
		if rpsSet {
			// An explicit -rps rescales the cohort mix to that aggregate;
			// otherwise the spec runs at its own rates.
			spec = spec.ScaledTo(*rps)
		}
		trace = workload.RecordTrace(spec, *seed, sim.Duration(duration.Seconds()))
		if len(trace.Records) == 0 {
			log.Fatalf("-spec %q produced no arrivals in %v", *specName, *duration)
		}
	case *replayPath != "":
		var err error
		trace, err = workload.ReadTraceFile(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		if len(trace.Records) == 0 {
			log.Fatalf("-replay trace %q has no records", *replayPath)
		}
		apps := trace.Header.Apps
		if len(apps) != 1 {
			log.Fatalf("replay trace covers apps %v; the loadgen needs exactly one", apps)
		}
		if appSet && apps[0] != *appName {
			log.Fatalf("-replay trace is for app %q but -app is %q", apps[0], *appName)
		}
		*appName = apps[0]
	}

	app := workload.ByName(*appName)
	if app == nil {
		log.Printf("unknown -app %q (try xapian, moses, …)", *appName)
		flag.Usage()
		os.Exit(2)
	}

	target := *addr
	if *selfhost {
		grid := cpu.DefaultGrid()
		srv, err := live.NewServer(live.ServerConfig{
			Addr:      "127.0.0.1:0",
			Workers:   runtime.NumCPU(),
			QoS:       app.QoS(),
			Predictor: flatPredictor(1e-6),
			Backend:   live.NewMockBackend(grid),
			Exec:      func(live.Request, cpu.Level) {},
			Params:    policy.Params{Alg1: policy.Alg1Params{HeadOnly: true}},
			AppName:   app.Name(),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.Start()
		defer srv.Close()
		target = srv.Addr()
		log.Printf("selfhost server on %s (%d workers, no-op executor)", target, runtime.NumCPU())
	}
	if target == "" {
		log.Print("need -addr or -selfhost")
		flag.Usage()
		os.Exit(2)
	}

	if trace != nil {
		if *recordPath != "" {
			p := obs.CollectProvenance()
			trace.Header.Provenance = workload.TraceProvenance{
				GoVersion: p.GoVersion, GoOS: p.GoOS, GoArch: p.GoArch,
				CPU: p.CPU, Commit: p.Commit, Time: p.Time,
			}
			if err := trace.WriteFile(*recordPath); err != nil {
				log.Fatal(err)
			}
			sha, err := trace.SHA()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("recorded %s (%d records, sha256 %s)", *recordPath, len(trace.Records), sha)
		}
		runSpec(trace, app, target, *conns, *drain, *seed, *report)
		return
	}

	log.Printf("open-loop %s: %.0f RPS over %d conns for %v", app.Name(), *rps, *conns, *duration)
	res, err := live.RunLoad(live.LoadConfig{
		Addr: target, App: app,
		RPS: *rps, Conns: *conns, Duration: *duration,
		Seed: *seed, DrainTimeout: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report())

	if *report != "" {
		q := func(p float64) float64 { return time.Duration(res.Latency.Quantile(p)).Seconds() }
		rep := obs.NewReport("loadgen", *seed, obs.HashConfig("loadgen", app.Name(),
			*rps, *conns, duration.String()))
		rep.Loadgen = &obs.LoadgenReport{
			App: app.Name(), Addr: target, Conns: *conns,
			Duration:   duration.Seconds(),
			Sent:       res.Sent,
			Completed:  res.Completed,
			Dropped:    res.Dropped,
			Unanswered: res.Unanswered,
			OfferedRPS: res.OfferedRPS,
			SentRPS:    res.SentRPS,
			ElapsedS:   res.Elapsed.Seconds(),
			LatencyS: obs.LatencyQuantiles{
				Min: time.Duration(res.Latency.Min()).Seconds(),
				P50: q(0.50), P90: q(0.90), P99: q(0.99),
				P999: q(0.999), P9999: q(0.9999),
				Max: time.Duration(res.Latency.Max()).Seconds(),
			},
		}
		if err := rep.WriteFile(*report); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report      %s (v%d, config %s)\n", *report, rep.Version, rep.ConfigHash)
	}
}

// runSpec sends a pre-drawn trace schedule over the wire and reports
// latency per SLO class.
func runSpec(trace *workload.Trace, app workload.App, target string,
	conns int, drain time.Duration, seed int64, report string) {
	span := time.Duration(trace.Records[len(trace.Records)-1].ArrivalNs())
	log.Printf("trace-scheduled %s: %d records over %v via %d conns",
		app.Name(), len(trace.Records), span.Round(time.Millisecond), conns)
	res, err := live.RunSpecLoad(live.SpecLoadConfig{
		Addr: target, Trace: trace, Conns: conns, DrainTimeout: drain,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Report())

	if report == "" {
		return
	}
	sha, err := trace.SHA()
	if err != nil {
		log.Fatal(err)
	}
	qos := app.QoS()
	pct := qos.Percentile / 100
	q := func(p float64) float64 { return time.Duration(res.Latency.Quantile(p)).Seconds() }
	rep := obs.NewReport("loadgen", seed, obs.HashConfig("loadgen-spec",
		app.Name(), sha, conns))
	lg := &obs.LoadgenReport{
		App: app.Name(), Addr: target, Conns: conns,
		Duration:   res.Elapsed.Seconds(),
		Sent:       res.Sent,
		Completed:  res.Completed,
		Dropped:    res.Dropped,
		Unanswered: res.Unanswered,
		OfferedRPS: res.OfferedRPS,
		SentRPS:    res.SentRPS,
		ElapsedS:   res.Elapsed.Seconds(),
		LatencyS: obs.LatencyQuantiles{
			Min: time.Duration(res.Latency.Min()).Seconds(),
			P50: q(0.50), P90: q(0.90), P99: q(0.99),
			P999: q(0.999), P9999: q(0.9999),
			Max: time.Duration(res.Latency.Max()).Seconds(),
		},
	}
	for i := range res.Classes {
		c := &res.Classes[i]
		cq := func(p float64) float64 { return time.Duration(c.Latency.Quantile(p)).Seconds() }
		targetS := c.Scale * float64(qos.Latency) // sim.Duration is seconds
		tail := cq(pct)
		lg.Classes = append(lg.Classes, obs.SLOClassLatency{
			Class: c.Class, QoSScale: c.Scale,
			Completed: c.Completed, Dropped: c.Dropped,
			P50: cq(0.50), P95: cq(0.95), P99: cq(0.99),
			TailAtQoS: tail, QoSTarget: targetS,
			QoSMet: tail <= targetS,
		})
	}
	rep.Loadgen = lg
	if err := rep.WriteFile(report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report      %s (v%d, config %s)\n", report, rep.Version, rep.ConfigHash)
}

// flatPredictor is the selfhost stand-in for a trained model: a constant
// tiny service time, so decisions always land on the lowest level and
// the DVFS write coalescer elides every backend call after the first.
type flatPredictor float64

func (p flatPredictor) Predict(lvl cpu.Level, f []float64) float64 { return float64(p) }
