// Command benchjson converts `go test -bench` output into a stable JSON
// baseline so the perf trajectory of the hot paths can be tracked across
// PRs without diffing free-form benchmark text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > results/BENCH_sweep.json
//	... | benchjson -history results/BENCH_history.jsonl > results/BENCH_sweep.json
//	... | benchjson -gate results/BENCH_cluster.json -tolerance 3
//
// The emitted document maps benchmark name → {ns_per_op, bytes_per_op,
// allocs_per_op}, stamped with the machine (goos/goarch/cpu), the Go
// toolchain version and the git commit, so a committed baseline says
// where its numbers came from. The trailing "-N" GOMAXPROCS suffix is
// stripped so the same baseline compares across machines with different
// core counts; everything else about the name (including sub-benchmark
// paths such as "/parallel=8") is preserved. Benchmarks that appear
// multiple times (e.g. -count > 1, or Go's "#01" disambiguation
// collapsing to the same stripped name) keep the last observation.
//
// -history FILE additionally appends the same document as one compact
// JSON line (with a timestamp) to FILE, building an append-only
// perf-trajectory log across baseline refreshes.
//
// -gate FILE switches to comparison mode: instead of emitting JSON, the
// parsed run is checked against the baseline in FILE and the process
// exits nonzero if any benchmark present in both regressed beyond the
// tolerances — ns/op by more than -tolerance× (default 3, generous
// because wall time is noisy across machines and CPU governors while
// still catching an order-of-magnitude relapse) or allocs/op by more
// than -alloc-tolerance× (default 1.25, tight because allocation counts
// are deterministic).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// point is one benchmark's measurements. Bytes/allocs are -1 when the run
// did not report them (no -benchmem and no b.ReportAllocs()).
type point struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	GoVersion  string           `json:"go,omitempty"`
	Commit     string           `json:"commit,omitempty"`
	Time       string           `json:"time,omitempty"` // history lines only
	Benchmarks map[string]point `json:"benchmarks"`
}

// procSuffix matches the "-8" GOMAXPROCS tail Go appends to benchmark
// names. Only the final segment is stripped, so "parallel=8" survives.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		historyPath = flag.String("history", "", "append the document as one JSON line to this file")
		gatePath    = flag.String("gate", "", "compare against this baseline instead of emitting JSON")
		tolerance   = flag.Float64("tolerance", 3, "gate: max allowed ns/op ratio vs baseline")
		allocTol    = flag.Float64("alloc-tolerance", 1.25, "gate: max allowed allocs/op ratio vs baseline")
	)
	flag.Parse()

	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	out.GoVersion = runtime.Version()
	out.Commit = gitCommit()

	if *gatePath != "" {
		if err := gate(out, *gatePath, *tolerance, *allocTol, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *historyPath != "" {
		if err := appendHistory(out, *historyPath); err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// gitCommit best-effort resolves the working tree's HEAD; a baseline
// generated outside a checkout simply omits the field.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// appendHistory adds the run as one compact timestamped JSON line —
// append-only, so successive baseline refreshes build a trajectory.
func appendHistory(b *baseline, path string) error {
	line := *b
	line.Time = time.Now().UTC().Format(time.RFC3339)
	buf, err := json.Marshal(&line)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(buf, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// gate compares the run against a committed baseline and fails on
// regression beyond the tolerances. Only benchmarks present in both are
// compared; the baseline's machine stamp is printed so a cross-machine
// comparison is visible in the log.
func gate(run *baseline, path string, tol, allocTol float64, w io.Writer) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Fprintf(w, "gate vs %s (cpu %q, %s, commit %s)\n", path, base.CPU, base.GoVersion, base.Commit)
	var failed, compared int
	for _, name := range sortedNames(run) {
		got, ok := run.Benchmarks[name]
		ref, inBase := base.Benchmarks[name]
		if !ok || !inBase {
			continue
		}
		compared++
		status := "ok"
		if ref.NsPerOp > 0 && got.NsPerOp > ref.NsPerOp*tol {
			status = fmt.Sprintf("FAIL ns/op %.0f > %.1fx baseline %.0f", got.NsPerOp, tol, ref.NsPerOp)
			failed++
		} else if ref.AllocsPerOp >= 0 && got.AllocsPerOp > ref.AllocsPerOp*allocTol {
			status = fmt.Sprintf("FAIL allocs/op %.0f > %.2fx baseline %.0f", got.AllocsPerOp, allocTol, ref.AllocsPerOp)
			failed++
		}
		fmt.Fprintf(w, "  %-40s %12.0f ns/op %8.0f allocs/op  [%s]\n", name, got.NsPerOp, got.AllocsPerOp, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with %s", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed past tolerance", failed, compared)
	}
	return nil
}

func parse(sc *bufio.Scanner) (*baseline, error) {
	out := &baseline{Benchmarks: map[string]point{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		p := point{BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if p.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		// Optional "X B/op  Y allocs/op" tail.
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				p.BytesPerOp = v
			case "allocs/op":
				p.AllocsPerOp = v
			}
		}
		out.Benchmarks[name] = p
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// sortedNames lists the parsed benchmark names in lexical order (JSON
// maps already marshal with sorted keys; this is for stable gate output
// and tests).
func sortedNames(b *baseline) []string {
	names := make([]string, 0, len(b.Benchmarks))
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
