// Command benchjson converts `go test -bench` output into a stable JSON
// baseline so the perf trajectory of the hot paths can be tracked across
// PRs without diffing free-form benchmark text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > results/BENCH_sweep.json
//
// The emitted document maps benchmark name → {ns_per_op, bytes_per_op,
// allocs_per_op}. The trailing "-N" GOMAXPROCS suffix is stripped so the
// same baseline compares across machines with different core counts;
// everything else about the name (including sub-benchmark paths such as
// "/parallel=8") is preserved. Benchmarks that appear multiple times
// (e.g. -count > 1, or Go's "#01" disambiguation collapsing to the same
// stripped name) keep the last observation.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// point is one benchmark's measurements. Bytes/allocs are -1 when the run
// did not report them (no -benchmem and no b.ReportAllocs()).
type point struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]point `json:"benchmarks"`
}

// procSuffix matches the "-8" GOMAXPROCS tail Go appends to benchmark
// names. Only the final segment is stripped, so "parallel=8" survives.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*baseline, error) {
	out := &baseline{Benchmarks: map[string]point{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		p := point{BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if p.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		// Optional "X B/op  Y allocs/op" tail.
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				p.BytesPerOp = v
			case "allocs/op":
				p.AllocsPerOp = v
			}
		}
		out.Benchmarks[name] = p
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// sortedNames lists the parsed benchmark names in lexical order (JSON
// maps already marshal with sorted keys; this is for diagnostics/tests).
func sortedNames(b *baseline) []string {
	names := make([]string, 0, len(b.Benchmarks))
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
