package main

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: retail/internal/manager
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRetailDecide-8         	 2042682	       582.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkRetailDecideColdMemo-8 	 1860000	       627.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepParallel/parallel=1-8  	      10	   4914329 ns/op	     768 B/op	       2 allocs/op
BenchmarkNoMem-8                	 1000000	      1000 ns/op
PASS
ok  	retail/internal/manager	3.1s
`

func TestParse(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || b.Goarch != "amd64" || !strings.Contains(b.CPU, "Xeon") {
		t.Fatalf("header = %q/%q/%q", b.Goos, b.Goarch, b.CPU)
	}
	want := []string{
		"BenchmarkNoMem",
		"BenchmarkRetailDecide",
		"BenchmarkRetailDecideColdMemo",
		"BenchmarkSweepParallel/parallel=1",
	}
	got := sortedNames(b)
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	d := b.Benchmarks["BenchmarkRetailDecide"]
	if d.NsPerOp != 582.2 || d.BytesPerOp != 0 || d.AllocsPerOp != 0 {
		t.Fatalf("decide = %+v", d)
	}
	p := b.Benchmarks["BenchmarkSweepParallel/parallel=1"]
	if p.NsPerOp != 4914329 || p.BytesPerOp != 768 || p.AllocsPerOp != 2 {
		t.Fatalf("parallel = %+v", p)
	}
	// ns/op-only lines keep the -1 "not reported" sentinel.
	nm := b.Benchmarks["BenchmarkNoMem"]
	if nm.NsPerOp != 1000 || nm.BytesPerOp != -1 || nm.AllocsPerOp != -1 {
		t.Fatalf("nomem = %+v", nm)
	}
}

func TestGate(t *testing.T) {
	mk := func(ns, allocs float64) *baseline {
		return &baseline{Benchmarks: map[string]point{
			"BenchmarkClusterFleet": {NsPerOp: ns, BytesPerOp: 0, AllocsPerOp: allocs},
			"BenchmarkRunOnly":      {NsPerOp: 1, AllocsPerOp: 0},
		}}
	}
	dir := t.TempDir()
	write := func(b *baseline) string {
		buf, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "base.json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write(&baseline{Benchmarks: map[string]point{
		"BenchmarkClusterFleet": {NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 100},
	}})

	// Within tolerance: 2.9x ns (< 3x), allocs equal.
	if err := gate(mk(2900, 100), base, 3, 1.25, io.Discard); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	// ns regression past 3x.
	if err := gate(mk(3100, 100), base, 3, 1.25, io.Discard); err == nil {
		t.Fatal("3.1x ns/op passed a 3x gate")
	}
	// allocs regression past 1.25x even with fine ns.
	if err := gate(mk(1000, 130), base, 3, 1.25, io.Discard); err == nil {
		t.Fatal("1.3x allocs/op passed a 1.25x gate")
	}
	// Nothing in common is an error, not a silent pass.
	empty := write(&baseline{Benchmarks: map[string]point{"Other": {NsPerOp: 1}}})
	if err := gate(mk(1, 0), empty, 3, 1.25, io.Discard); err == nil {
		t.Fatal("disjoint baselines passed the gate")
	}
}

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	b := &baseline{Goos: "linux", Benchmarks: map[string]point{"B": {NsPerOp: 7}}}
	if err := appendHistory(b, path); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(b, path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(buf)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history lines = %d, want 2 (append-only)", len(lines))
	}
	var got baseline
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Time == "" || got.Benchmarks["B"].NsPerOp != 7 {
		t.Fatalf("history line = %+v", got)
	}
	if b.Time != "" {
		t.Fatal("appendHistory mutated the caller's document")
	}
}

// TestBenchHistorySchema validates every committed line of the
// append-only results/BENCH_history.jsonl against the baseline shape:
// strict JSON (no unknown fields), full provenance, RFC3339 timestamps
// and finite, non-negative benchmark points. The history is the
// repo's performance trajectory; a malformed append would silently
// poison every future cross-commit comparison.
func TestBenchHistorySchema(t *testing.T) {
	path := filepath.Join("..", "..", "results", "BENCH_history.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Skipf("no history file: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			t.Fatalf("line %d: blank line in append-only history", n)
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var b baseline
		if err := dec.Decode(&b); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if dec.More() {
			t.Fatalf("line %d: trailing data after the JSON document", n)
		}
		for field, v := range map[string]string{
			"goos": b.Goos, "goarch": b.Goarch, "go": b.GoVersion,
			"commit": b.Commit, "time": b.Time,
		} {
			if v == "" {
				t.Errorf("line %d: missing %s", n, field)
			}
		}
		if _, err := time.Parse(time.RFC3339, b.Time); b.Time != "" && err != nil {
			t.Errorf("line %d: bad time %q: %v", n, b.Time, err)
		}
		if len(b.Benchmarks) == 0 {
			t.Errorf("line %d: no benchmarks", n)
		}
		for name, p := range b.Benchmarks {
			if p.NsPerOp <= 0 || math.IsNaN(p.NsPerOp) || math.IsInf(p.NsPerOp, 0) {
				t.Errorf("line %d: %s has non-positive ns/op %v", n, name, p.NsPerOp)
			}
			if p.BytesPerOp < 0 || p.AllocsPerOp < 0 {
				t.Errorf("line %d: %s has negative memory stats", n, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("history file exists but is empty")
	}
}
