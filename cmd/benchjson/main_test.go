package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: retail/internal/manager
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRetailDecide-8         	 2042682	       582.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkRetailDecideColdMemo-8 	 1860000	       627.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepParallel/parallel=1-8  	      10	   4914329 ns/op	     768 B/op	       2 allocs/op
BenchmarkNoMem-8                	 1000000	      1000 ns/op
PASS
ok  	retail/internal/manager	3.1s
`

func TestParse(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Goos != "linux" || b.Goarch != "amd64" || !strings.Contains(b.CPU, "Xeon") {
		t.Fatalf("header = %q/%q/%q", b.Goos, b.Goarch, b.CPU)
	}
	want := []string{
		"BenchmarkNoMem",
		"BenchmarkRetailDecide",
		"BenchmarkRetailDecideColdMemo",
		"BenchmarkSweepParallel/parallel=1",
	}
	got := sortedNames(b)
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	d := b.Benchmarks["BenchmarkRetailDecide"]
	if d.NsPerOp != 582.2 || d.BytesPerOp != 0 || d.AllocsPerOp != 0 {
		t.Fatalf("decide = %+v", d)
	}
	p := b.Benchmarks["BenchmarkSweepParallel/parallel=1"]
	if p.NsPerOp != 4914329 || p.BytesPerOp != 768 || p.AllocsPerOp != 2 {
		t.Fatalf("parallel = %+v", p)
	}
	// ns/op-only lines keep the -1 "not reported" sentinel.
	nm := b.Benchmarks["BenchmarkNoMem"]
	if nm.NsPerOp != 1000 || nm.BytesPerOp != -1 || nm.AllocsPerOp != -1 {
		t.Fatalf("nomem = %+v", nm)
	}
}
