// Command retail-cluster runs the fleet-scale routing×policy×load sweep:
// N nodes, each with its own server and per-node DVFS policy, behind a
// pluggable cross-node dispatcher, all on one deterministic event engine.
//
// Usage:
//
//	retail-cluster                                # 100-node default sweep (≥1M requests)
//	retail-cluster -quick                         # CI-sized smoke
//	retail-cluster -nodes 32 -dispatchers power-of-two,global-jsq -policies retail
//	retail-cluster -per-node                      # per-node tables per cell
//	retail-cluster -csv out/                      # raw grid CSV
//	retail-cluster -metrics-out metrics.prom      # telemetry snapshot of the last cell
//	retail-cluster -tiers xapian,silo             # multi-tier budget allocation report
//	retail-cluster -quick -report report.json     # versioned run report with per-node energy×QoS ledger
//
// The default run drives ≥1M requests: 16 cells (4 dispatchers × 4 node
// policies) × 70000 requests each. Output is deterministic — byte-identical
// at every -parallel setting — and the same tables are golden-checked by
// `make cluster-check`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"retail/internal/cluster"
	"retail/internal/core"
	"retail/internal/experiments"
	"retail/internal/nn"
	"retail/internal/obs"
	"retail/internal/policy"
	"retail/internal/sim"
	"retail/internal/telemetry"
	"retail/internal/workload"
)

func main() {
	var (
		app         = flag.String("app", "xapian", "application every node serves")
		nodes       = flag.Int("nodes", 100, "fleet size (nodes per cell)")
		workers     = flag.Int("workers", 4, "cores per node")
		dispatchers = flag.String("dispatchers", "", "comma-separated routing rules (default: all four)")
		policies    = flag.String("policies", "", "comma-separated per-node DVFS policies (default: retail,rubik,gemini,eetl)")
		loads       = flag.String("loads", "0.6", "comma-separated load fractions of fleet max")
		requests    = flag.Int("requests", 70000, "offered requests per sweep cell")
		quick       = flag.Bool("quick", false, "CI-sized fleet (4 nodes, small calibration)")
		parallel    = flag.Int("parallel", 0, "concurrent sweep cells (0 = GOMAXPROCS, 1 = sequential); results are byte-identical at any setting")
		seed        = flag.Int64("seed", 42, "root seed")
		perNode     = flag.Bool("per-node", false, "print per-node tables for every cell")
		csvDir      = flag.String("csv", "", "directory to write the raw grid CSV into")
		metricsOut  = flag.String("metrics-out", "", "file for a telemetry snapshot of the last cell re-run with per-node series")
		tiers       = flag.String("tiers", "", "comma-separated apps: print the multi-tier budget allocation report instead of sweeping")
		samples     = flag.Int("budget-samples", 0, "profiling draw per tier for -tiers (0 = allocator default)")
		report      = flag.String("report", "", "file for the versioned obs run report (attaches per-node energy×QoS ledgers and a telemetry registry to every cell)")
		specName    = flag.String("spec", "", "cohort workload spec driving every cell: a builtin name ("+strings.Join(workload.BuiltinSpecNames(), ", ")+") or a JSON file")
		recordPath  = flag.String("record", "", "record the single cell's pre-routing stream to this v2 trace file (requires -spec and a 1×1×1 sweep)")
		replayPath  = flag.String("replay", "", "replay a recorded v2 trace through the single cell instead of generating load (excludes -spec/-record)")
		paramsPath  = flag.String("params", "", "serializable policy params JSON applied to every node (empty = historical defaults)")
	)
	flag.Parse()

	params, err := policy.LoadParams(*paramsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "retail-cluster:", err)
		os.Exit(2)
	}

	if *tiers != "" {
		if err := budgetReport(strings.Split(*tiers, ","), *samples, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		return
	}

	// Validate the workload flag combinations before any calibration work.
	if *specName != "" && *replayPath != "" {
		fmt.Fprintln(os.Stderr, "retail-cluster: -spec and -replay are mutually exclusive")
		os.Exit(1)
	}
	if *recordPath != "" && *specName == "" {
		fmt.Fprintln(os.Stderr, "retail-cluster: -record requires -spec (only generated streams are recorded)")
		os.Exit(1)
	}
	var spec *workload.Spec
	var replayTrace *workload.Trace
	if *specName != "" {
		var err error
		spec, err = workload.LoadSpec(*specName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
	}
	if *replayPath != "" {
		var err error
		replayTrace, err = workload.ReadTraceFile(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.Params = params

	opt := experiments.FleetOptions{
		App:             *app,
		Nodes:           *nodes,
		WorkersPerNode:  *workers,
		Loads:           splitFloats(*loads),
		RequestsPerCell: *requests,
	}
	if *quick {
		opt.Nodes = 4
		opt.WorkersPerNode = 2
		opt.RequestsPerCell = 2500
	}
	if *dispatchers != "" {
		opt.Dispatchers = strings.Split(*dispatchers, ",")
	}
	if *policies != "" {
		opt.Policies = strings.Split(*policies, ",")
	}
	opt.Spec = spec
	opt.Record = *recordPath != ""
	opt.Replay = replayTrace
	var reg *telemetry.Registry
	if *report != "" {
		// A report wants full attribution: ledgers on every node and a
		// registry for the fleet roll-up.
		opt.Ledger = true
		reg = telemetry.NewRegistry()
		opt.Registry = reg
	}

	res, err := experiments.FleetSweep(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "retail-cluster:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())

	if res.Recorded != nil {
		p := obs.CollectProvenance()
		res.Recorded.Header.Provenance = workload.TraceProvenance{
			GoVersion: p.GoVersion, GoOS: p.GoOS, GoArch: p.GoArch,
			CPU: p.CPU, Commit: p.Commit, Time: p.Time,
		}
		if err := res.Recorded.WriteFile(*recordPath); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		sha, err := res.Recorded.SHA()
		if err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %s (%d records, sha256 %s)\n", *recordPath, len(res.Recorded.Records), sha)
	}
	if *perNode {
		for _, c := range res.Cells {
			fmt.Printf("\nper-node: load=%.2f %s/%s\n", c.Load, c.Dispatcher, c.Policy)
			fmt.Print(renderPerNode(c.Result))
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, "fleet_sweep.csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		if err := res.CSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %s\n", path)
	}
	if *metricsOut != "" {
		if err := metricsSnapshot(cfg, opt, res, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *report != "" {
		rep := res.Report(*seed, obs.RollupRegistry(reg))
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, "retail-cluster:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (report v%d, config %s)\n", *report, rep.Version, rep.ConfigHash)
	}
}

// budgetReport is the satellite surface for AllocateBudgets: profile the
// named tiers, split an end-to-end QoS across them, and print the
// profiled tails next to the budgets they earned.
func budgetReport(appNames []string, samples int, seed int64) error {
	var ts []*cluster.Tier
	var qosSum sim.Duration
	for _, name := range appNames {
		app := workload.ByName(strings.TrimSpace(name))
		if app == nil {
			return fmt.Errorf("unknown app %q", name)
		}
		ts = append(ts, &cluster.Tier{App: app, Workers: 4})
		qosSum += app.QoS().Latency
	}
	qos := workload.QoS{Latency: qosSum, Percentile: 99}
	profiled, err := cluster.AllocateBudgets(qos, ts, 0.1, samples, seed)
	if err != nil {
		return err
	}
	if samples <= 0 {
		samples = cluster.DefaultBudgetSamples
	}
	fmt.Printf("budget allocation: end-to-end p%.0f ≤ %v across %d tiers (%d samples/tier, 10%% margin)\n\n",
		qos.Percentile, qos.Latency, len(ts), samples)
	fmt.Printf("%-10s  %-12s  %-12s  %s\n", "tier", "profiled p95", "budget", "share")
	for i, t := range ts {
		fmt.Printf("%-10s  %-12v  %-12v  %.1f%%\n", t.App.Name(), profiled[i], t.Budget,
			100*float64(t.Budget)/float64(qos.Latency))
	}
	return nil
}

// renderPerNode prints one fleet cell's per-node breakdown.
func renderPerNode(r *cluster.FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s  %-9s  %-7s  %-4s  %-10s  %-8s  %-7s  %s\n",
		"node", "completed", "dropped", "viol", "p99", "energy_J", "power_W", "meanLvl")
	for _, n := range r.PerNode {
		fmt.Fprintf(&b, "%-5d  %-9d  %-7d  %-4d  %-10v  %-8.2f  %-7.2f  %.2f\n",
			n.Node, n.Completed, n.Dropped, n.Violations, sim.Time(n.P99),
			n.EnergyJ, n.AvgPowerW, n.MeanServedLevel())
	}
	return b.String()
}

// metricsSnapshot re-runs the sweep's last cell with a telemetry registry
// attached (per-node series under the standard metric families) and
// writes the exposition snapshot.
func metricsSnapshot(cfg experiments.Config, opt experiments.FleetOptions, res *experiments.FleetSweepResult, path string) error {
	if len(res.Cells) == 0 {
		return fmt.Errorf("no cells to snapshot")
	}
	cell := res.Cells[len(res.Cells)-1]
	app := workload.ByName(res.App)
	platform := cfg.Platform.WithWorkers(res.WorkersPerNode)
	cal, err := core.Calibrate(app, platform, cfg.SamplesPerLevel, cfg.Seed)
	if err != nil {
		return err
	}
	var nnCfg *nn.Config = cfg.GeminiNN
	rps := res.MaxRPSPerNode * float64(res.Nodes) * cell.Load
	dur := sim.Duration(float64(opt.RequestsPerCell) / rps)
	reg := telemetry.NewRegistry()
	_, err = cluster.RunFleet(cluster.FleetConfig{
		Cal: cal, Nodes: res.Nodes, WorkersPerNode: res.WorkersPerNode,
		Policy: cell.Policy, Dispatcher: cell.Dispatcher, GeminiNN: nnCfg,
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: cfg.Seed,
		Params:   cfg.Params,
		Registry: reg,
		Labels: []telemetry.Label{
			telemetry.L("dispatcher", cell.Dispatcher),
			telemetry.L("policy", cell.Policy),
		},
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WriteText(f)
}

func splitFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "retail-cluster: bad load %q: %v\n", part, err)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}
