// Command retail-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	retail-bench -list
//	retail-bench -exp fig11 -apps xapian,moses
//	retail-bench -exp all -quick
//
// Each experiment prints the same rows/series the paper reports. The
// default (non -quick) configuration uses the paper's resolution: 20
// workers, 1000 calibration samples per frequency, loads 10%–100% in 10%
// steps. -quick shrinks everything for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"retail/internal/experiments"
	"retail/internal/trace"
)

type runner struct {
	name string
	desc string
	run  func(cfg experiments.Config, apps []string) (fmt.Stringer, error)
}

type rendered string

func (r rendered) String() string { return string(r) }

// renderedWith carries CSV-exportable results and span flight recorders
// alongside the text render.
type renderedWith struct {
	text string
	exp  map[string]experiments.CSVExportable
	tr   map[string]*trace.FlightRecorder
}

func (r renderedWith) String() string                                { return r.text }
func (r renderedWith) exports() map[string]experiments.CSVExportable { return r.exp }
func (r renderedWith) traces() map[string]*trace.FlightRecorder      { return r.tr }

// traceCarrier is implemented by results that can carry a flight recorder
// (spike, fig14); the recorder is nil unless Config.Trace was set.
type traceCarrier interface {
	FlightRecorder() *trace.FlightRecorder
}

func wrap(f func(experiments.Config) (interface{ Render() string }, error)) func(experiments.Config, []string) (fmt.Stringer, error) {
	return func(cfg experiments.Config, _ []string) (fmt.Stringer, error) {
		res, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out := renderedWith{text: res.Render()}
		if e, ok := res.(experiments.CSVExportable); ok {
			out.exp = map[string]experiments.CSVExportable{expName(res): e}
		}
		if tc, ok := res.(traceCarrier); ok {
			if fr := tc.FlightRecorder(); fr != nil {
				out.tr = map[string]*trace.FlightRecorder{expName(res): fr}
			}
		}
		if out.exp == nil && out.tr == nil {
			return rendered(out.text), nil
		}
		return out, nil
	}
}

// expName derives a stable CSV filename from the result type.
func expName(res any) string {
	name := fmt.Sprintf("%T", res)
	name = strings.TrimPrefix(name, "*experiments.")
	return strings.ToLower(strings.TrimSuffix(name, "Result"))
}

func allRunners() []runner {
	return []runner{
		{"fig1", "ImgDNN service vs sojourn time across RPS", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig1(c) })},
		{"fig2", "service-time CDFs and Table II ratios", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig2(c) })},
		{"fig3", "request-length interpretations vs service time", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig3(c) })},
		{"fig4", "per-TPC-C-type service CDFs (Shore/Silo)", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig4(c) })},
		{"fig5", "application features vs service time", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig5(c) })},
		{"fig6", "application-feature lateness", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig6(c) })},
		{"table4", "LR vs NN-G vs NN-T overhead/accuracy", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.TableIV(c) })},
		{"fig8", "Xapian fit curves (LR line vs NN wiggle)", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig8(c) })},
		{"fig9", "R² vs training-set size", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig9(c) })},
		{"fig11", "power / drops / tails sweep + Table V (per app)",
			func(cfg experiments.Config, apps []string) (fmt.Stringer, error) {
				res, err := experiments.Fig11(cfg, apps)
				if err != nil {
					return nil, err
				}
				return renderedWith{text: res.Render(), exp: map[string]experiments.CSVExportable{"fig11": res}}, nil
			}},
		{"fig12", "ReTail decomposition (feature space × mechanism)",
			func(cfg experiments.Config, apps []string) (fmt.Stringer, error) {
				if len(apps) == 0 {
					apps = []string{"xapian", "shore"}
				}
				var out strings.Builder
				exp := map[string]experiments.CSVExportable{}
				for _, a := range apps {
					res, err := experiments.Fig12(cfg, a)
					if err != nil {
						return nil, err
					}
					out.WriteString(res.Render())
					out.WriteByte('\n')
					exp["fig12_"+a] = res
				}
				return renderedWith{text: out.String(), exp: exp}, nil
			}},
		{"fig13", "PARTIES + ReTail colocation timeline", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig13(c) })},
		{"fig14", "model drift, retraining and recovery timeline", wrap(func(c experiments.Config) (interface{ Render() string }, error) { return experiments.Fig14(c) })},
		{"ablation", "ReTail design-choice ablations (monitor, queue awareness, per-frequency models, stage-1 split)",
			func(cfg experiments.Config, apps []string) (fmt.Stringer, error) {
				if len(apps) == 0 {
					apps = []string{"moses", "xapian"}
				}
				var out strings.Builder
				exp := map[string]experiments.CSVExportable{}
				for _, a := range apps {
					res, err := experiments.Ablation(cfg, a)
					if err != nil {
						return nil, err
					}
					out.WriteString(res.Render())
					out.WriteByte('\n')
					exp["ablation_"+a] = res
				}
				return renderedWith{text: out.String(), exp: exp}, nil
			}},
		{"spike", "load-spike response: QoS′ collapse and recovery",
			func(cfg experiments.Config, apps []string) (fmt.Stringer, error) {
				if len(apps) == 0 {
					apps = []string{"xapian"}
				}
				results, err := experiments.LoadSpikes(cfg, apps)
				if err != nil {
					return nil, err
				}
				var out strings.Builder
				exp := map[string]experiments.CSVExportable{}
				tr := map[string]*trace.FlightRecorder{}
				for i, res := range results {
					out.WriteString(res.Render())
					exp["spike_"+apps[i]] = res
					if res.Flight != nil {
						tr["spike_"+apps[i]] = res.Flight
					}
				}
				if len(tr) == 0 {
					tr = nil
				}
				return renderedWith{text: out.String(), exp: exp, tr: tr}, nil
			}},
		{"overhead", "§VII-F decision/transition overhead accounting",
			func(cfg experiments.Config, apps []string) (fmt.Stringer, error) {
				if len(apps) == 0 {
					apps = []string{"xapian"}
				}
				var out strings.Builder
				for _, a := range apps {
					res, err := experiments.Overhead(cfg, a)
					if err != nil {
						return nil, err
					}
					out.WriteString(res.Render())
				}
				return rendered(out.String()), nil
			}},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		appsFlag = flag.String("apps", "", "comma-separated app filter for fig11/fig12/overhead (default: all)")
		quick    = flag.Bool("quick", false, "reduced configuration for a fast pass")
		seed     = flag.Int64("seed", 42, "simulation seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files into")
		traceDir = flag.String("trace-dir", "", "directory to write Perfetto-viewable span traces for trace-capable experiments (spike, fig14)")
		parallel = flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	)
	flag.Parse()

	runners := allRunners()
	if *list {
		for _, r := range runners {
			fmt.Printf("  %-9s %s\n", r.name, r.desc)
		}
		return
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.Trace = *traceDir != ""

	var apps []string
	if *appsFlag != "" {
		apps = strings.Split(*appsFlag, ",")
	}
	want := map[string]bool{}
	runAll := *expFlag == "all"
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	exit := 0
	for _, r := range runners {
		if !runAll && !want[r.name] {
			continue
		}
		start := time.Now()
		out, err := r.run(cfg, apps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			exit = 1
			continue
		}
		fmt.Printf("==== %s (%s) [%s]\n%s\n", r.name, r.desc, time.Since(start).Round(time.Millisecond), out)
		if *csvDir != "" {
			if exp, ok := out.(interface {
				exports() map[string]experiments.CSVExportable
			}); ok {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					exit = 1
					continue
				}
				exports := exp.exports()
				names := make([]string, 0, len(exports))
				for name := range exports {
					names = append(names, name)
				}
				sort.Strings(names) // deterministic "wrote ..." output order
				for _, name := range names {
					e := exports[name]
					path := filepath.Join(*csvDir, name+".csv")
					f, err := os.Create(path)
					if err != nil {
						fmt.Fprintf(os.Stderr, "csv: %v\n", err)
						exit = 1
						continue
					}
					if err := e.CSV(f); err != nil {
						fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
						exit = 1
					}
					f.Close()
					fmt.Printf("  wrote %s\n", path)
				}
			}
		}
		if *traceDir != "" {
			if tc, ok := out.(interface {
				traces() map[string]*trace.FlightRecorder
			}); ok && len(tc.traces()) > 0 {
				if err := os.MkdirAll(*traceDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					exit = 1
					continue
				}
				traces := tc.traces()
				names := make([]string, 0, len(traces))
				for name := range traces {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					fr := traces[name]
					path := filepath.Join(*traceDir, name+".trace.json")
					f, err := os.Create(path)
					if err != nil {
						fmt.Fprintf(os.Stderr, "trace: %v\n", err)
						exit = 1
						continue
					}
					if err := fr.WriteChrome(f); err != nil {
						fmt.Fprintf(os.Stderr, "trace %s: %v\n", path, err)
						exit = 1
					}
					f.Close()
					st := fr.Stats()
					fmt.Printf("  wrote %s (%d spans, %d violations)\n", path, st.Kept, st.Violations)
				}
			}
		}
	}
	os.Exit(exit)
}
