// Command retail-sim runs a single measured simulation: one application,
// one power manager, one load point. It prints the run summary (power,
// latency percentiles, drops, QoS verdict) and is the quickest way to poke
// at the system.
//
// Usage:
//
//	retail-sim -app xapian -manager retail -load 0.7
//	retail-sim -app silo -manager gemini -rps 20000 -duration 30
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"retail/internal/core"
	"retail/internal/experiments"
	"retail/internal/manager"
	"retail/internal/nn"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "xapian", "application: "+strings.Join(experiments.AppNames(), ", "))
		mgrName  = flag.String("manager", "retail", "power manager: retail, rubik, gemini, adrenaline, eetl, pegasus, maxfreq")
		load     = flag.Float64("load", 0.7, "load as a fraction of calibrated max load")
		rps      = flag.Float64("rps", 0, "absolute request rate (overrides -load)")
		workers  = flag.Int("workers", 20, "worker cores")
		duration = flag.Float64("duration", 0, "measured seconds (0 = auto)")
		seed     = flag.Int64("seed", 7, "simulation seed")
		samples  = flag.Int("samples", 1000, "calibration samples per frequency level")
		quickNN  = flag.Bool("quick-nn", true, "use a small NN for gemini instead of the 5×128")
	)
	flag.Parse()

	app := workload.ByName(*appName)
	if app == nil {
		log.Fatalf("unknown app %q", *appName)
	}
	platform := core.DefaultPlatform().WithWorkers(*workers)
	cal, err := core.Calibrate(app, platform, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	rate := *rps
	if rate <= 0 {
		rate = core.CalibrateMaxLoad(app, platform, *seed) * *load
	}
	var m manager.Manager
	switch *mgrName {
	case "retail":
		m = cal.NewReTail()
	case "rubik":
		m = cal.NewRubik()
	case "gemini":
		var cfg *nn.Config
		if *quickNN {
			c := nn.TunedConfig(1, 2, 32, 30, 32)
			cfg = &c
		}
		m, err = cal.NewGemini(cfg)
		if err != nil {
			log.Fatal(err)
		}
	case "adrenaline":
		m = cal.NewAdrenaline()
	case "eetl":
		m = cal.NewEETL()
	case "pegasus":
		m = cal.NewPegasus()
	case "maxfreq":
		m = cal.NewMaxFreq()
	default:
		log.Fatalf("unknown manager %q", *mgrName)
	}

	dur := sim.Duration(*duration)
	if dur <= 0 {
		dur = core.RecommendedDuration(app, rate)
	}
	res, err := core.Run(core.RunConfig{
		App: app, Platform: platform, Manager: m,
		RPS: rate, Warmup: dur / 5, Duration: dur, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	verdict := "MET"
	if !res.QoSMet {
		verdict = "VIOLATED"
	}
	fmt.Printf(`app          %s  (QoS %s)
manager      %s
load         %.0f RPS over %v (%d workers)
completed    %d   dropped %d (%.2f%%)
power        %.2f W avg   (%.1f J)
latency      p50 %v   p95 %v   p99 %v   mean %v
QoS          %s (p%g = %v vs target %v)
transitions  %d frequency changes
`,
		res.App, app.QoS(), res.Manager, res.RPS, dur, *workers,
		res.Completed, res.Dropped, res.DropRate()*100,
		res.AvgPowerW, res.EnergyJ,
		sim.Time(res.P50), sim.Time(res.P95), sim.Time(res.P99), sim.Time(res.MeanLatency),
		verdict, app.QoS().Percentile, sim.Time(res.TailAtQoSPct), app.QoS().Latency,
		res.Transitions)
}
