// Command retail-sim runs a single measured simulation: one application,
// one power manager, one load point. It prints the run summary (power,
// latency percentiles, drops, QoS verdict) and is the quickest way to poke
// at the system.
//
// Usage:
//
//	retail-sim -app xapian -manager retail -load 0.7
//	retail-sim -app silo -manager gemini -rps 20000 -duration 30
//	retail-sim -app xapian -trace run.json            # Perfetto-viewable spans
//	retail-sim -app xapian -trace run.csv -trace-format csv
//	retail-sim -app xapian -metrics                   # Prometheus text dump
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"retail/internal/core"
	"retail/internal/experiments"
	"retail/internal/manager"
	"retail/internal/nn"
	"retail/internal/obs"
	"retail/internal/policy"
	"retail/internal/server"
	"retail/internal/sim"
	"retail/internal/telemetry"
	"retail/internal/trace"
	"retail/internal/workload"
)

func main() {
	var (
		appName    = flag.String("app", "xapian", "application: "+strings.Join(experiments.AppNames(), ", "))
		mgrName    = flag.String("manager", "retail", "power manager: retail, rubik, gemini, adrenaline, eetl, pegasus, maxfreq")
		load       = flag.Float64("load", 0.7, "load as a fraction of calibrated max load")
		rps        = flag.Float64("rps", 0, "absolute request rate (overrides -load)")
		workers    = flag.Int("workers", 20, "worker cores")
		duration   = flag.Float64("duration", 0, "measured seconds (0 = auto)")
		seed       = flag.Int64("seed", 7, "simulation seed")
		samples    = flag.Int("samples", 1000, "calibration samples per frequency level")
		quickNN    = flag.Bool("quick-nn", true, "use a small NN for gemini instead of the 5×128")
		paramsPath = flag.String("params", "", "serializable policy params JSON (empty = historical defaults)")

		specName   = flag.String("spec", "", "cohort workload spec: a builtin name ("+strings.Join(workload.BuiltinSpecNames(), ", ")+") or a JSON file")
		recordPath = flag.String("record", "", "record the generated request stream to this v2 trace file (requires -spec)")
		replayPath = flag.String("replay", "", "replay a recorded v2 trace instead of generating load (excludes -spec/-record)")

		tracePath  = flag.String("trace", "", "write a request trace to this file (span flight recorder)")
		traceFmt   = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto-viewable JSON) or csv")
		traceCap   = flag.Int("trace-cap", 0, "flight-recorder ring capacity per class (0 = default 4096)")
		traceEvery = flag.Int("trace-sample", 1, "keep 1 of every N ordinary spans (violations/drops/p99 always kept)")
		metrics    = flag.Bool("metrics", false, "attach the telemetry registry and print a Prometheus text summary after the run")
		reportPath = flag.String("report", "", "file for the versioned obs run report (attaches the energy×QoS attribution ledger)")
	)
	flag.Parse()

	appSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "app" {
			appSet = true
		}
	})
	// A workload source (spec or replay trace) names its own app; it
	// overrides the -app default and must agree with an explicit -app.
	var spec *workload.Spec
	var replayTrace *workload.Trace
	if err := validateWorkloadFlags(*specName, *recordPath, *replayPath); err != nil {
		fmt.Fprintf(os.Stderr, "retail-sim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *specName != "":
		var err error
		spec, err = workload.LoadSpec(*specName)
		if err != nil {
			log.Fatalf("retail-sim: %v", err)
		}
		specApp, err := spec.SingleApp()
		if err != nil {
			log.Fatalf("retail-sim: %v", err)
		}
		if appSet && specApp.Name() != *appName {
			log.Fatalf("retail-sim: -spec %q targets app %q but -app is %q", *specName, specApp.Name(), *appName)
		}
		*appName = specApp.Name()
	case *replayPath != "":
		var err error
		replayTrace, err = workload.ReadTraceFile(*replayPath)
		if err != nil {
			log.Fatalf("retail-sim: %v", err)
		}
		if len(replayTrace.Records) == 0 {
			log.Fatalf("retail-sim: -replay trace %q has no records", *replayPath)
		}
		apps := replayTrace.Header.Apps
		if len(apps) != 1 {
			log.Fatalf("retail-sim: replay trace covers apps %v; single-node replay needs exactly one", apps)
		}
		if appSet && apps[0] != *appName {
			log.Fatalf("retail-sim: -replay trace is for app %q but -app is %q", apps[0], *appName)
		}
		*appName = apps[0]
	}
	app := workload.ByName(*appName)
	if err := validateFlags(app, *appName, *load, *rps, *workers, *duration, *samples,
		*tracePath, *traceFmt, *traceCap, *traceEvery); err != nil {
		fmt.Fprintf(os.Stderr, "retail-sim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	// Load and validate the policy params before any calibration work so a
	// malformed file fails fast; the zero value keeps historical behavior.
	params, err := policy.LoadParams(*paramsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-sim: %v\n", err)
		os.Exit(2)
	}
	platform := core.DefaultPlatform().WithWorkers(*workers)
	cal, err := core.Calibrate(app, platform, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	rate := *rps
	if rate <= 0 {
		rate = core.CalibrateMaxLoad(app, platform, *seed) * *load
	}
	if spec != nil {
		// Scale here rather than in core.Run so a recorded trace's header
		// carries the spec actually generated (rates included).
		spec = spec.ScaledTo(rate)
	}
	var m manager.Manager
	switch *mgrName {
	case "retail", "rubik", "gemini", "eetl":
		var cfg *nn.Config
		if *quickNN {
			c := nn.TunedConfig(1, 2, 32, 30, 32)
			cfg = &c
		}
		m, err = cal.NewManagerParams(*mgrName, cfg, params)
		if err != nil {
			log.Fatal(err)
		}
	case "adrenaline":
		m = cal.NewAdrenaline()
	case "pegasus":
		m = cal.NewPegasus()
	case "maxfreq":
		m = cal.NewMaxFreq()
	default:
		log.Fatalf("unknown manager %q", *mgrName)
	}

	dur := sim.Duration(*duration)
	if dur <= 0 {
		dur = core.RecommendedDuration(app, rate)
	}
	warmup := dur / 5
	if replayTrace != nil && *duration <= 0 {
		// Reproduce the recording's horizon: a stream recorded over
		// warmup+duration = 1.2×duration spans that window, so split the
		// trace's span 1:5 the same way.
		span := sim.Duration(replayTrace.Records[len(replayTrace.Records)-1].Arrival)
		warmup = span / 6
		dur = span - warmup
	}

	// Optional observers, installed through the core.Run instrument hook so
	// they wrap the manager's hooks chain after Attach.
	var (
		flight *trace.FlightRecorder
		reg    *telemetry.Registry
		led    *obs.NodeLedger
		srvRef *server.Server
	)
	if *tracePath != "" {
		flight = trace.NewFlightRecorder(trace.FlightRecorderConfig{
			QoS: app.QoS(), Capacity: *traceCap, SampleEvery: *traceEvery,
		})
	}
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	instrument := func(e *sim.Engine, s *server.Server) {
		srvRef = s
		if flight != nil {
			flight.Attach(s)
		}
		if *reportPath != "" {
			led = obs.AttachLedger(s, app.QoS())
			// Reset in the same virtual instant core.Run resets energy, so
			// ledger counts and socket joules share the measurement epoch.
			lr := led
			e.At(warmup, "obs.ledger.reset", func(*sim.Engine) { lr.Reset() })
		}
		var fs, ls server.DecisionSink
		if flight != nil {
			fs = flight
		}
		if led != nil {
			ls = led
		}
		if sink := obs.TeeDecisionSink(fs, ls); sink != nil {
			if ds, ok := m.(interface {
				SetDecisionSink(server.DecisionSink)
			}); ok {
				ds.SetDecisionSink(sink)
			} else if flight != nil {
				log.Printf("note: manager %q emits no decision attribution; trace will carry lifecycle spans only", m.Name())
			}
		}
		if reg != nil {
			server.AttachTelemetry(s, reg, app.Name(), app.QoS())
			if rt, ok := m.(*manager.ReTail); ok {
				rt.Instrument(reg, app.Name())
			}
		}
	}
	runCfg := core.RunConfig{
		App: app, Platform: platform, Manager: m,
		RPS: rate, Warmup: warmup, Duration: dur, Seed: *seed,
		Instrument: instrument,
	}
	var recTrace *workload.Trace
	switch {
	case replayTrace != nil:
		runCfg.Replay, runCfg.RPS = replayTrace, 0
	case spec != nil:
		// The spec is pre-scaled to rate; RPS 0 runs it as-is.
		runCfg.Spec, runCfg.RPS = spec, 0
		if *recordPath != "" {
			recTrace = workload.NewTrace(spec, *seed)
			runCfg.Record = recTrace
		}
	}
	res, err := core.Run(runCfg)
	if err != nil {
		log.Fatal(err)
	}
	if recTrace != nil {
		p := obs.CollectProvenance()
		recTrace.Header.Provenance = workload.TraceProvenance{
			GoVersion: p.GoVersion, GoOS: p.GoOS, GoArch: p.GoArch,
			CPU: p.CPU, Commit: p.Commit, Time: p.Time,
		}
		if err := recTrace.WriteFile(*recordPath); err != nil {
			log.Fatal(err)
		}
		sha, err := recTrace.SHA()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded     %s (%d records, sha256 %s)\n", *recordPath, len(recTrace.Records), sha)
	}

	verdict := "MET"
	if !res.QoSMet {
		verdict = "VIOLATED"
	}
	fmt.Printf(`app          %s  (QoS %s)
manager      %s
load         %.0f RPS over %v (%d workers)
completed    %d   dropped %d (%.2f%%)
power        %.2f W avg   (%.1f J)
latency      p50 %v   p95 %v   p99 %v   mean %v
QoS          %s (p%g = %v vs target %v)
transitions  %d frequency changes
`,
		res.App, app.QoS(), res.Manager, res.RPS, dur, *workers,
		res.Completed, res.Dropped, res.DropRate()*100,
		res.AvgPowerW, res.EnergyJ,
		sim.Time(res.P50), sim.Time(res.P95), sim.Time(res.P99), sim.Time(res.MeanLatency),
		verdict, app.QoS().Percentile, sim.Time(res.TailAtQoSPct), app.QoS().Latency,
		res.Transitions)
	for _, cr := range res.Classes {
		met := "MET"
		if !cr.QoSMet {
			met = "VIOLATED"
		}
		fmt.Printf("class        %-12s scale %.2f  completed %d  dropped %d  p50 %v  p99 %v  tail %v vs %v  %s\n",
			cr.Class, cr.QoSScale, cr.Completed, cr.Dropped,
			sim.Time(cr.P50), sim.Time(cr.P99), sim.Time(cr.TailAtQoSPct), sim.Time(cr.QoSTarget), met)
	}

	if flight != nil {
		if err := writeTrace(flight, *tracePath, *traceFmt); err != nil {
			log.Fatal(err)
		}
		st := flight.Stats()
		fmt.Printf("trace        %s (%s): %d spans kept of %d seen, %d violations, %d drops\n",
			*tracePath, *traceFmt, st.Kept, st.Total, st.Violations, st.Dropped)
		fmt.Print(flight.Audit().Render())
	}
	if reg != nil {
		fmt.Println("--- metrics ---")
		if err := reg.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *reportPath != "" {
		end := warmup + dur
		ns := led.Summary(res.App, 0, srvRef.Socket.EnergyByLevel(end), srvRef.Socket.UncoreJoules(end))
		rep := obs.NewReport("sim", *seed, obs.HashConfig("sim", res.App, res.Manager,
			*workers, rate, float64(dur), *samples))
		rep.Sim = &obs.SimReport{
			App: res.App, Manager: res.Manager,
			RPS: res.RPS, Duration: float64(dur),
			Completed: res.Completed, Dropped: res.Dropped,
			Violations: int(ns.Violations()), QoSMet: res.QoSMet,
			MeanLatency: res.MeanLatency,
			P50:         res.P50, P95: res.P95, P99: res.P99,
			TailAtQoS: res.TailAtQoSPct,
			EnergyJ:   res.EnergyJ, AvgPowerW: res.AvgPowerW,
			Ledger: []obs.NodeSummary{ns},
		}
		for _, cr := range res.Classes {
			rep.Sim.Classes = append(rep.Sim.Classes, obs.SLOClassLatency{
				Class: cr.Class, QoSScale: cr.QoSScale,
				Completed: cr.Completed, Dropped: cr.Dropped,
				P50: cr.P50, P95: cr.P95, P99: cr.P99,
				TailAtQoS: cr.TailAtQoSPct, QoSTarget: cr.QoSTarget,
				QoSMet: cr.QoSMet,
			})
		}
		if err := rep.WriteFile(*reportPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report       %s (v%d, config %s)\n", *reportPath, rep.Version, rep.ConfigHash)
	}
}

// writeTrace exports the flight recorder in the requested format.
func writeTrace(fr *trace.FlightRecorder, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = fr.WriteChrome(f)
	case "csv":
		err = fr.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// validateWorkloadFlags checks the -spec/-record/-replay combinations
// before any file or calibration work happens.
func validateWorkloadFlags(spec, record, replay string) error {
	if spec != "" && replay != "" {
		return fmt.Errorf("-spec and -replay are mutually exclusive")
	}
	if record != "" && spec == "" {
		return fmt.Errorf("-record requires -spec (only generated streams are recorded)")
	}
	return nil
}

// validateFlags checks flag combinations up front so misconfiguration
// produces a usable error instead of a mid-run failure, mirroring
// retail-live's validateFlags.
func validateFlags(app workload.App, appName string, load, rps float64, workers int, duration float64, samples int, tracePath, traceFmt string, traceCap, traceEvery int) error {
	if app == nil {
		return fmt.Errorf("unknown -app %q (known: %s)", appName, strings.Join(experiments.AppNames(), ", "))
	}
	if rps < 0 {
		return fmt.Errorf("-rps must be non-negative, got %g", rps)
	}
	if rps == 0 && load <= 0 {
		return fmt.Errorf("-load must be positive when -rps is unset, got %g", load)
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if duration < 0 {
		return fmt.Errorf("-duration must be non-negative, got %g", duration)
	}
	if samples < 1 {
		return fmt.Errorf("-samples must be at least 1, got %d", samples)
	}
	if traceFmt != "chrome" && traceFmt != "csv" {
		return fmt.Errorf("-trace-format must be chrome or csv, got %q", traceFmt)
	}
	if tracePath == "" {
		if traceCap != 0 {
			return fmt.Errorf("-trace-cap is only meaningful with -trace")
		}
		if traceEvery != 1 {
			return fmt.Errorf("-trace-sample is only meaningful with -trace")
		}
		return nil
	}
	if traceCap < 0 {
		return fmt.Errorf("-trace-cap must be non-negative, got %d", traceCap)
	}
	if traceEvery < 1 {
		return fmt.Errorf("-trace-sample must be at least 1, got %d", traceEvery)
	}
	return nil
}
