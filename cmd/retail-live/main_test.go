package main

import (
	"strings"
	"testing"
	"time"

	"retail/internal/workload"
)

// TestValidateFlags pins the up-front flag validation: every
// misconfiguration must fail before calibration with a message naming
// the offending flag (previously -sysfs without -cores surfaced as an
// Atoi error on an empty string mid-run).
func TestValidateFlags(t *testing.T) {
	app := workload.ByName("xapian")
	ok := func(rps float64, dur time.Duration, workers int, scale float64, sysfs bool, cores string) ([]int, error) {
		return validateFlags(app, "xapian", rps, dur, workers, scale, sysfs, cores, "retail")
	}

	cases := []struct {
		name    string
		run     func() ([]int, error)
		wantErr string // substring; empty means must succeed
		cores   []int
	}{
		{"defaults", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, false, "") }, "", nil},
		{"unknown app", func() ([]int, error) {
			return validateFlags(nil, "nope", 150, time.Second, 2, 0.2, false, "", "retail")
		}, `unknown -app "nope"`, nil},
		{"unknown policy", func() ([]int, error) {
			return validateFlags(app, "xapian", 150, time.Second, 2, 0.2, false, "", "nope")
		}, `unknown -policy "nope"`, nil},
		{"baseline policy ok", func() ([]int, error) {
			return validateFlags(app, "xapian", 150, time.Second, 2, 0.2, false, "", "rubik")
		}, "", nil},
		{"empty policy defaults", func() ([]int, error) {
			return validateFlags(app, "xapian", 150, time.Second, 2, 0.2, false, "", "")
		}, "", nil},
		{"zero rps is serve-only", func() ([]int, error) { return ok(0, time.Second, 2, 0.2, false, "") }, "", nil},
		{"negative rps", func() ([]int, error) { return ok(-1, time.Second, 2, 0.2, false, "") }, "-rps", nil},
		{"negative duration", func() ([]int, error) { return ok(150, -time.Second, 2, 0.2, false, "") }, "-duration", nil},
		{"zero workers", func() ([]int, error) { return ok(150, time.Second, 0, 0.2, false, "") }, "-workers", nil},
		{"zero scale", func() ([]int, error) { return ok(150, time.Second, 2, 0, false, "") }, "-scale", nil},
		{"cores without sysfs", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, false, "2,3") }, "-cores is only meaningful with -sysfs", nil},
		{"sysfs without cores", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, true, "") }, "-sysfs requires -cores", nil},
		{"sysfs bad core entry", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, true, "2,x") }, `bad -cores entry "x"`, nil},
		{"sysfs negative core", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, true, "2,-1") }, "non-negative", nil},
		{"sysfs too few cores", func() ([]int, error) { return ok(150, time.Second, 3, 0.2, true, "2,3") }, "each worker needs its own core", nil},
		{"sysfs ok", func() ([]int, error) { return ok(150, time.Second, 2, 0.2, true, " 2 , 3 ") }, "", []int{2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cores, err := tc.run()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(tc.cores) != len(cores) {
					t.Fatalf("cores = %v, want %v", cores, tc.cores)
				}
				for i := range tc.cores {
					if cores[i] != tc.cores[i] {
						t.Fatalf("cores = %v, want %v", cores, tc.cores)
					}
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
