// Command retail-live runs the wall-clock ReTail runtime: a real TCP
// server with per-worker queues and Algorithm 1 frequency decisions,
// loaded by an in-process open-loop client. By default the DVFS backend
// is mocked (the demo executor scales its synthetic work to the decided
// frequency); with -sysfs it writes the Linux cpufreq userspace governor
// files, exactly as the paper's testbed does.
//
//	retail-live -app xapian -rps 150 -duration 5s
//	sudo retail-live -app xapian -sysfs -cores 2,3  # real DVFS (Linux)
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"retail/internal/core"
	"retail/internal/cpu"
	"retail/internal/live"
	"retail/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "xapian", "application model")
		rps      = flag.Float64("rps", 150, "client request rate")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		workers  = flag.Int("workers", 2, "worker goroutines")
		scale    = flag.Float64("scale", 0.2, "time compression for the demo executor")
		sysfs    = flag.Bool("sysfs", false, "drive real cpufreq files instead of the mock")
		sysfsDir = flag.String("sysfs-root", "/sys/devices/system/cpu", "cpufreq root")
		coresArg = flag.String("cores", "", "comma-separated physical cores for -sysfs")
	)
	flag.Parse()

	app := workload.ByName(*appName)
	if app == nil {
		log.Fatalf("unknown app %q", *appName)
	}
	platform := core.DefaultPlatform().WithWorkers(*workers)
	log.Printf("calibrating %s …", app.Name())
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}

	grid := platform.Grid
	mock := live.NewMockBackend(grid)
	var backend live.Backend = mock
	if *sysfs {
		var cores []int
		for _, c := range strings.Split(*coresArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				log.Fatalf("bad -cores: %v", err)
			}
			cores = append(cores, n)
		}
		b, err := live.NewSysfsBackend(grid, *sysfsDir, cores)
		if err != nil {
			log.Fatal(err)
		}
		backend = b
		*scale = 1 // real hardware runs in real time
	}

	srv, err := live.NewServer(live.ServerConfig{
		Addr:      "127.0.0.1:0",
		Workers:   *workers,
		QoS:       app.QoS(),
		Predictor: scaled{cal.Model, *scale},
		Backend:   backend,
		Exec:      live.DemoExecutor(app, mock, *scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	log.Printf("serving on %s; loading at %.0f RPS for %v", srv.Addr(), *rps, *duration)

	res, err := live.RunClient(live.ClientConfig{
		Addr: srv.Addr(), App: app, RPS: *rps, Duration: *duration,
		Conns: 8, Seed: 7, TimeScale: *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(`sent        %d
completed   %d
latency     p50 %v   p95 %v   p99 %v   mean %v
decisions   %d frequency decisions, %d DVFS writes
qos'        %v (target %v × scale %.2f)
`, res.Sent, res.Completed, res.P50, res.P95, res.P99, res.Mean,
		srv.Decisions(), mock.Writes(), srv.QoSPrime(),
		time.Duration(float64(app.QoS().Latency)*1e9), *scale)
}

type scaled struct {
	inner interface {
		Predict(cpu.Level, []float64) float64
	}
	s float64
}

func (p scaled) Predict(lvl cpu.Level, f []float64) float64 {
	return p.inner.Predict(lvl, f) * p.s
}
