// Command retail-live runs the wall-clock ReTail runtime: a real TCP
// server with per-worker queues and Algorithm 1 frequency decisions,
// loaded by an in-process open-loop client. By default the DVFS backend
// is mocked (the demo executor scales its synthetic work to the decided
// frequency); with -sysfs it writes the Linux cpufreq userspace governor
// files, exactly as the paper's testbed does.
//
// The frequency policy is selectable: -policy runs ReTail (default) or
// one of the paper's baselines — rubik (offline distribution tail),
// gemini (head-sized NN posture with a two-step boost) or eetl
// (slow-start with a long-request threshold) — over the same wall-clock
// runtime, because all four are adapters of the shared decision core in
// internal/policy.
//
//	retail-live -app xapian -rps 150 -duration 5s
//	retail-live -app xapian -policy rubik          # baseline on the live runtime
//	retail-live -app xapian -metrics-addr :9090   # Prometheus /metrics + /healthz
//	sudo retail-live -app xapian -sysfs -cores 2,3  # real DVFS (Linux)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"retail/internal/core"
	"retail/internal/cpu"
	"retail/internal/fault"
	"retail/internal/live"
	"retail/internal/obs"
	"retail/internal/policy"
	"retail/internal/telemetry"
	"retail/internal/workload"
)

func main() {
	var (
		appName     = flag.String("app", "xapian", "application model")
		rps         = flag.Float64("rps", 150, "built-in client request rate (0 = serve-only, for an external generator such as retail-loadgen)")
		listen      = flag.String("listen", "127.0.0.1:0", "server listen address")
		duration    = flag.Duration("duration", 5*time.Second, "load (or serve-only) duration")
		workers     = flag.Int("workers", 2, "worker goroutines")
		scale       = flag.Float64("scale", 0.2, "time compression for the demo executor")
		sysfs       = flag.Bool("sysfs", false, "drive real cpufreq files instead of the mock")
		sysfsDir    = flag.String("sysfs-root", "/sys/devices/system/cpu", "cpufreq root")
		coresArg    = flag.String("cores", "", "comma-separated physical cores for -sysfs")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /healthz on this address (e.g. :9090)")
		faultPlan   = flag.String("fault-plan", "", "replay a named fault plan against the runtime (see retail-chaos -list)")
		policyName  = flag.String("policy", "retail", "frequency policy: retail, rubik, gemini or eetl")
		paramsPath  = flag.String("params", "", "serializable policy params JSON (empty = historical defaults)")
	)
	flag.Parse()

	app := workload.ByName(*appName)
	cores, err := validateFlags(app, *appName, *rps, *duration, *workers, *scale, *sysfs, *coresArg, *policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-live: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	params, err := policy.LoadParams(*paramsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retail-live: %v\n", err)
		os.Exit(2)
	}

	platform := core.DefaultPlatform().WithWorkers(*workers)
	log.Printf("calibrating %s …", app.Name())
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}

	grid := platform.Grid
	mock := live.NewMockBackend(grid)
	var backend live.Backend = mock
	if *sysfs {
		b, err := live.NewSysfsBackend(grid, *sysfsDir, cores)
		if err != nil {
			log.Fatal(err)
		}
		backend = b
		*scale = 1 // real hardware runs in real time
	}

	// Optional chaos: wrap the backend with the fault injector and enable
	// the degradation policy so the run demonstrates the recovery story.
	var inj *fault.Injector
	var plan *fault.Plan
	var degrade live.DegradePolicy
	if *faultPlan != "" {
		plan, err = fault.PlanByName(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		wall := fault.WallClock()
		s := *scale
		inj = fault.New(1, plan).WithClock(func() float64 { return wall() / s })
		backend = live.NewFaultyBackend(backend, inj)
		degrade = live.DefaultChaosPolicy()
		log.Printf("fault plan %s", plan)
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	srv, err := live.NewServer(live.ServerConfig{
		Addr:         *listen,
		Workers:      *workers,
		QoS:          app.QoS(),
		Predictor:    scaled{cal.Model, *scale},
		Backend:      backend,
		Exec:         live.DemoExecutor(app, mock, *scale),
		Metrics:      reg,
		AppName:      app.Name(),
		Faults:       inj,
		Degrade:      degrade,
		Policy:       *policyName,
		Params:       params,
		ProfileAtMax: scaleProfile(cal.ProfileAtMax, *scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Establish the documented initial condition — every worker core at
	// max frequency — in one batched backend pass (a BatchBackend
	// coalesces it; others fall back to per-core writes).
	initial := make([]live.LevelWrite, *workers)
	for i := range initial {
		initial[i] = live.LevelWrite{Core: i, Level: grid.MaxLevel()}
	}
	if err := live.ApplyLevels(backend, initial); err != nil {
		log.Printf("initial DVFS pass: %v (continuing; runtime reconciles per write)", err)
	}

	srv.Start()
	defer srv.Close()
	if reg != nil {
		// Fold Go runtime health (goroutines, heap, GC pause and scheduler
		// latency tails) into the same registry the request metrics live in,
		// so one scrape separates runtime-induced tail spikes from policy.
		sampler := obs.StartRuntimeSampler(reg, time.Second)
		defer sampler.Stop()
		// One port hosts both the Prometheus exposition and the runtime's
		// introspection endpoints: /debug/trace (decision-attributed flight
		// ring), /debug/fleet (per-app telemetry roll-up) and /debug/pprof/*
		// (live CPU/heap profiles, with retail=decide / retail=ingress labels
		// splitting the two hot paths).
		mux := http.NewServeMux()
		mux.Handle("/debug/", srv.DebugHandler())
		mux.Handle("/", reg.Handler())
		ms, err := telemetry.ServeHandler(*metricsAddr, mux)
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		log.Printf("metrics on http://%s/metrics (health: /healthz, trace: /debug/trace, fleet: /debug/fleet, profiles: /debug/pprof/)", ms.Addr())
	}
	if *rps == 0 {
		// Serve-only: no built-in client — an external generator (e.g.
		// retail-loadgen) drives the runtime over the wire.
		log.Printf("serving on %s (policy %s) for %v — drive it with: retail-loadgen -addr %s -app %s",
			srv.Addr(), srv.Policy(), *duration, srv.Addr(), app.Name())
		time.Sleep(*duration)
		fmt.Printf(`policy      %s
decisions   %d frequency decisions, %d DVFS writes, %d coalesced
qos'        %v (target %v × scale %.2f)
`, srv.Policy(), srv.Decisions(), mock.Writes(), srv.DegradeCounts().DVFSCoalesced,
			srv.QoSPrime(), time.Duration(float64(app.QoS().Latency)*1e9), *scale)
		return
	}
	log.Printf("serving on %s (policy %s); loading at %.0f RPS for %v", srv.Addr(), srv.Policy(), *rps, *duration)

	ccfg := live.ClientConfig{
		Addr: srv.Addr(), App: app, RPS: *rps, Duration: *duration,
		Conns: 8, Seed: 7, TimeScale: *scale,
	}
	if plan != nil {
		ccfg.Burst = plan.Burst
	}
	res, err := live.RunClient(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(`policy      %s
sent        %d
completed   %d
latency     p50 %v   p95 %v   p99 %v   mean %v
decisions   %d frequency decisions, %d DVFS writes, %d coalesced
qos'        %v (target %v × scale %.2f)
`, srv.Policy(), res.Sent, res.Completed, res.P50, res.P95, res.P99, res.Mean,
		srv.Decisions(), mock.Writes(), srv.DegradeCounts().DVFSCoalesced, srv.QoSPrime(),
		time.Duration(float64(app.QoS().Latency)*1e9), *scale)
	if inj != nil {
		deg := srv.DegradeCounts()
		fmt.Printf(`chaos       injected %d faults; client retries %d, lost %d
recovery    dvfs errors %d  retries %d  fallbacks %d  shed %d  deadline drops %d  pinned %d
`, inj.FiredTotal(), res.Retries, res.Lost,
			deg.DVFSWriteErrors, deg.DVFSRetries, deg.DVFSFallbacks,
			deg.Shed, deg.DeadlineDrops, srv.PinnedWorkers())
	}
}

// validateFlags checks flag combinations up front so misconfiguration
// produces a usable error instead of a mid-run failure (previously
// -sysfs without -cores fell through to an Atoi failure on an empty
// string). It returns the parsed core list for -sysfs.
func validateFlags(app workload.App, appName string, rps float64, duration time.Duration, workers int, scale float64, sysfs bool, coresArg, policy string) ([]int, error) {
	if app == nil {
		return nil, fmt.Errorf("unknown -app %q (try xapian, moses, …)", appName)
	}
	switch policy {
	case "", "retail", "rubik", "gemini", "eetl":
	default:
		return nil, fmt.Errorf("unknown -policy %q (want retail, rubik, gemini or eetl)", policy)
	}
	if rps < 0 {
		return nil, fmt.Errorf("-rps must be non-negative (0 = serve-only), got %g", rps)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive, got %v", duration)
	}
	if workers < 1 {
		return nil, fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("-scale must be positive, got %g", scale)
	}
	coresArg = strings.TrimSpace(coresArg)
	if !sysfs {
		if coresArg != "" {
			return nil, fmt.Errorf("-cores is only meaningful with -sysfs (the mock backend has no physical cores)")
		}
		return nil, nil
	}
	if coresArg == "" {
		return nil, fmt.Errorf("-sysfs requires -cores: list the physical cores whose cpufreq files to drive, e.g. -cores 2,3")
	}
	var cores []int
	for _, c := range strings.Split(coresArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return nil, fmt.Errorf("bad -cores entry %q: need comma-separated integers, e.g. -cores 2,3", c)
		}
		if n < 0 {
			return nil, fmt.Errorf("bad -cores entry %d: core indices are non-negative", n)
		}
		cores = append(cores, n)
	}
	if len(cores) < workers {
		return nil, fmt.Errorf("-cores lists %d cores but -workers is %d: each worker needs its own core", len(cores), workers)
	}
	return cores, nil
}

// scaleProfile compresses the calibrated max-frequency service-time
// profile to the demo executor's timebase, mirroring what the scaled
// predictor does: the profile-driven baselines (Rubik's distribution
// tail, EETL's long-request threshold) must see service times in the
// same units the executor actually produces.
func scaleProfile(profile []float64, s float64) []float64 {
	out := make([]float64, len(profile))
	for i, v := range profile {
		out[i] = v * s
	}
	return out
}

type scaled struct {
	inner interface {
		Predict(cpu.Level, []float64) float64
	}
	s float64
}

func (p scaled) Predict(lvl cpu.Level, f []float64) float64 {
	return p.inner.Predict(lvl, f) * p.s
}
