// Websearch: the paper's motivating scenario. A Xapian-like search engine
// whose request latency is driven by an *application feature* (the number
// of matched documents) that no request-arrival field predicts. The
// example contrasts:
//
//   - Gemini, whose feature space is restricted to request-arrival fields
//     (and which sheds load when it predicts a deadline miss), against
//   - ReTail, which splits request processing so the matched-document
//     count is extracted eagerly and fed to the per-frequency linear model.
//
// Expected outcome (the paper's §VII-B point 2): Gemini's prediction error
// on this workload is large, it violates QoS at high load and drops
// requests, while ReTail meets QoS without drops at lower power.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	"retail/internal/core"
	"retail/internal/nn"
	"retail/internal/predict"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	app := workload.NewXapian()
	platform := core.DefaultPlatform().WithWorkers(8)
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// How well can each predictor possibly do? Score both against a fresh
	// profile: the NN sees only request-arrival features (query length —
	// uninformative); the linear model sees the matched-document count.
	nncfg := nn.TunedConfig(1, 2, 32, 40, 32)
	gemModel, err := cal.GeminiModel(&nncfg)
	if err != nil {
		log.Fatal(err)
	}
	test := cal.Training.At(platform.Grid.MaxLevel())
	gemMet, _ := predict.Evaluate(gemModel, test)
	lrMet, _ := predict.Evaluate(cal.Model, test)
	fmt.Printf("Predictor accuracy on %s (QoS %v):\n", app.Name(), app.QoS().Latency)
	fmt.Printf("  Gemini NN (request features only): R²=%.3f RMSE/QoS=%.1f%%\n",
		gemMet.R2, gemMet.RMSE/float64(app.QoS().Latency)*100)
	fmt.Printf("  ReTail LR (with doc_count):        R²=%.3f RMSE/QoS=%.1f%%\n\n",
		lrMet.R2, lrMet.RMSE/float64(app.QoS().Latency)*100)

	maxLoad := core.CalibrateMaxLoad(app, platform, 1)
	for _, lf := range []float64{0.5, 0.9} {
		rps := maxLoad * lf
		dur := core.RecommendedDuration(app, rps)
		gem, err := cal.NewGemini(&nncfg)
		if err != nil {
			log.Fatal(err)
		}
		gr, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: gem,
			RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		rr, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewReTail(),
			RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("load %3.0f%% (%5.0f RPS):\n", lf*100, rps)
		fmt.Printf("  gemini: %5.1f W  p99 %-10v QoS met %-5v drops %.1f%%\n",
			gr.AvgPowerW, sim.Time(gr.TailAtQoSPct), gr.QoSMet, gr.DropRate()*100)
		fmt.Printf("  retail: %5.1f W  p99 %-10v QoS met %-5v drops %.1f%%\n",
			rr.AvgPowerW, sim.Time(rr.TailAtQoSPct), rr.QoSMet, rr.DropRate()*100)
	}
}
