// Colocation: the paper's Fig 13 scenario. Two latency-critical services
// (Moses translation and Silo OLTP) share one node. A PARTIES-style
// application-level manager first finds a feasible allocation — each
// tenant gets a partition of cores, all at max frequency — and then ReTail
// is layered on each tenant for per-request frequency scaling.
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"retail/internal/colocate"
	"retail/internal/core"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	platform := core.DefaultPlatform().WithWorkers(8)
	half := platform.Workers / 2

	mk := func(app workload.App, workers int, seed int64) *colocate.Tenant {
		cal, err := core.Calibrate(app, platform.WithWorkers(workers), 1000, 1)
		if err != nil {
			log.Fatal(err)
		}
		rps := core.CalibrateMaxLoad(app, platform.WithWorkers(workers), 1) * 0.5
		return &colocate.Tenant{Cal: cal, Workers: workers, RPS: rps, Seed: seed}
	}
	moses := mk(workload.NewMoses(), half, 11)
	silo := mk(workload.NewSilo(), platform.Workers-half, 22)
	node := colocate.NewNode([]*colocate.Tenant{moses, silo}, platform)

	e := sim.NewEngine()
	node.Start(e)

	// Phase 1 (0–5 s): PARTIES' feasible allocation, application-level
	// only. Phase 2 (5 s+): ReTail manages each tenant's cores per
	// request.
	e.At(1, "measure", func(en *sim.Engine) { node.ResetEnergy(en) })
	var beforeW float64
	e.At(5, "switch", func(en *sim.Engine) {
		beforeW = node.PowerW(en.Now())
		if _, err := node.EnableReTail(en, 0); err != nil {
			log.Fatal(err)
		}
		if _, err := node.EnableReTail(en, 1); err != nil {
			log.Fatal(err)
		}
		node.ResetEnergy(en)
	})
	e.Run(15)
	for _, t := range node.Tenants {
		t.Gen.Stop()
	}
	afterW := node.PowerW(e.Now())

	fmt.Printf("Colocated node: moses (%d cores, %.0f RPS) + silo (%d cores, %.0f RPS)\n\n",
		moses.Workers, moses.RPS, silo.Workers, silo.RPS)
	fmt.Printf("  phase 1 — PARTIES allocation only:  %.1f W\n", beforeW)
	fmt.Printf("  phase 2 — ReTail per-request DVFS:  %.1f W  (saving %.1f%%)\n\n",
		afterW, (1-afterW/beforeW)*100)
	for _, t := range node.Tenants {
		q := t.Cal.App.QoS()
		tail, _ := t.Lat.Percentile(q.Percentile)
		verdict := "met"
		if tail > float64(q.Latency) {
			verdict = "VIOLATED"
		}
		fmt.Printf("  %-9s p%g = %-10v (QoS %v %s)\n",
			t.Cal.App.Name(), q.Percentile, sim.Time(tail), q.Latency, verdict)
	}
}
