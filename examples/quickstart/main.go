// Quickstart: calibrate ReTail for one application, run it against the
// unmanaged baseline, and print the power/latency outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"retail/internal/core"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	// 1. Pick a latency-critical application and a platform. Xapian-like
	//    web search: request latency is explained by an application
	//    feature (the matched-document count) that only becomes known
	//    shortly after processing starts.
	app := workload.NewXapian()
	platform := core.DefaultPlatform().WithWorkers(8)

	// 2. Calibrate: profile 1000 requests per frequency setting, select
	//    the features that correlate with service time, and fit the
	//    per-(category × frequency) linear latency predictor.
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	specs := app.FeatureSpecs()
	fmt.Printf("Feature selection for %s:\n", app.Name())
	for _, j := range cal.Selection.Selected {
		fmt.Printf("  selected %q (lateness %.2f, standalone CD %.3f)\n",
			specs[j].Name, specs[j].Lateness, cal.Selection.IndividualCD[j])
	}
	fmt.Printf("  combined correlation degree %.3f, model RMSE/QoS %.2f%%\n\n",
		cal.Selection.CombinedCD, cal.BaselineRMSEOverQoS*100)

	// 3. Find the application's max load (highest RPS meeting QoS on the
	//    unmanaged system) and run at 70% of it.
	rps := core.CalibrateMaxLoad(app, platform, 1) * 0.7
	dur := core.RecommendedDuration(app, rps)

	baseline, err := core.Run(core.RunConfig{
		App: app, Platform: platform, Manager: cal.NewMaxFreq(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	managed, err := core.Run(core.RunConfig{
		App: app, Platform: platform, Manager: cal.NewReTail(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("At %.0f RPS (70%% of max load), %v measured:\n", rps, dur)
	fmt.Printf("  default (max frequency): %6.1f W, p99 = %v\n",
		baseline.AvgPowerW, sim.Time(baseline.P99))
	fmt.Printf("  ReTail:                  %6.1f W, p99 = %v (QoS %v met: %v)\n",
		managed.AvgPowerW, sim.Time(managed.P99), app.QoS().Latency, managed.QoSMet)
	fmt.Printf("  power saving:            %6.1f%%\n",
		(1-managed.AvgPowerW/baseline.AvgPowerW)*100)
}
