// Database: a Silo-like in-memory TPC-C engine — the paper's
// "combinational" category, where request features (transaction type,
// ordered-item count) and application features (rollback flag,
// distinct-item count) jointly explain service time, and where
// sub-millisecond requests make per-request DVFS hard (frequency
// transitions cost a comparable 10–500 µs).
//
// The example shows the per-(type × frequency) linear models ReTail fits
// — the explainability the paper argues for — and then compares managers.
//
//	go run ./examples/database
package main

import (
	"fmt"
	"log"

	"retail/internal/core"
	"retail/internal/predict"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	app := workload.NewSilo()
	platform := core.DefaultPlatform().WithWorkers(8)
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}

	specs := app.FeatureSpecs()
	fmt.Printf("Selected features for %s:", app.Name())
	for _, j := range cal.Selection.Selected {
		fmt.Printf(" %s", specs[j].Name)
	}
	fmt.Printf("  (combined CD %.3f)\n\n", cal.Selection.CombinedCD)

	// Explainability (§V-B point 4): the fitted coefficients are readable.
	// Predict a few representative transactions at min and max frequency.
	fmt.Println("Per-transaction predictions (the model is a handful of coefficients):")
	cases := []struct {
		label string
		feats []float64
	}{
		{"NEW_ORDER, 5 items", []float64{workload.TxNewOrder, 5, 0, 0}},
		{"NEW_ORDER, 15 items", []float64{workload.TxNewOrder, 15, 0, 0}},
		{"PAYMENT", []float64{workload.TxPayment, 0, 0, 0}},
		{"STOCK_LEVEL, 120 distinct", []float64{workload.TxStockLevel, 0, 0, 120}},
		{"STOCK_LEVEL, 300 distinct", []float64{workload.TxStockLevel, 0, 0, 300}},
	}
	grid := platform.Grid
	for _, c := range cases {
		lo := cal.Model.Predict(0, c.feats)
		hi := cal.Model.Predict(grid.MaxLevel(), c.feats)
		fmt.Printf("  %-26s %8v @1.0GHz   %8v @2.1GHz\n",
			c.label, sim.Time(lo), sim.Time(hi))
	}
	fmt.Println()

	// Live accuracy check at the managed operating point.
	maxLoad := core.CalibrateMaxLoad(app, platform, 1)
	rps := maxLoad * 0.7
	dur := core.RecommendedDuration(app, rps)
	rr, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewReTail(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7, CollectSamples: true})
	if err != nil {
		log.Fatal(err)
	}
	rb, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewRubik(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	mx, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewMaxFreq(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	met, _ := predict.Evaluate(cal.Model, rr.Samples)
	fmt.Printf("At 70%% load (%.0f RPS), %v window:\n", rps, dur)
	fmt.Printf("  maxfreq: %5.1f W  p99 %v\n", mx.AvgPowerW, sim.Time(mx.TailAtQoSPct))
	fmt.Printf("  rubik:   %5.1f W  p99 %v  QoS met %v\n", rb.AvgPowerW, sim.Time(rb.TailAtQoSPct), rb.QoSMet)
	fmt.Printf("  retail:  %5.1f W  p99 %v  QoS met %v  (live RMSE/QoS %.1f%%)\n",
		rr.AvgPowerW, sim.Time(rr.TailAtQoSPct), rr.QoSMet, met.RMSE/float64(app.QoS().Latency)*100)
	fmt.Println("\nNote the modest gap vs Rubik: with sub-millisecond requests the")
	fmt.Println("frequency-transition latency (10–500µs) eats into per-request savings —")
	fmt.Println("the paper's §VII-B observation for Silo.")
}
