// Replay: the production calibration path. Instead of a synthetic
// workload model, capture (features, service time) pairs from live
// traffic, persist them as CSV, and drive the whole ReTail pipeline —
// feature selection, per-frequency regression, power management — from
// the recorded trace. The fitted model is also saved and reloaded, as a
// deployment would do across restarts.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"retail/internal/core"
	"retail/internal/predict"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "retail-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. "Capture" a trace from the running service (here: the synthetic
	//    Moses stands in for production traffic) and persist it.
	src := workload.NewMoses()
	samples := workload.CaptureReplay(src, 5000, 42)
	tracePath := filepath.Join(dir, "moses_trace.csv")
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.DumpReplayCSV(f, src.FeatureSpecs(), samples); err != nil {
		log.Fatal(err)
	}
	f.Close()
	st, _ := os.Stat(tracePath)
	fmt.Printf("captured %d requests to %s (%d bytes)\n", len(samples), tracePath, st.Size())

	// 2. Reload the trace and build a replay workload from it.
	f, err = os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := workload.LoadReplayCSV(f, src.FeatureSpecs())
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	app, err := workload.NewReplayApp("moses-trace", src.QoS(), src.FeatureSpecs(), loaded, 0.80)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Calibrate from the replay and persist the fitted model.
	platform := core.DefaultPlatform().WithWorkers(8)
	cal, err := core.Calibrate(app, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cal.Model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := predict.LoadLinear(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	met, _ := predict.Evaluate(reloaded, cal.Training.All())
	fmt.Printf("model fitted from trace: RMSE/QoS %.2f%% (persisted as %d bytes of JSON)\n",
		met.RMSE/float64(app.QoS().Latency)*100, buf.Len())

	// 4. Run ReTail against the replayed traffic.
	rps := core.CalibrateMaxLoad(app, platform, 1) * 0.6
	dur := core.RecommendedDuration(app, rps)
	rt, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewReTail(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	mx, err := core.Run(core.RunConfig{App: app, Platform: platform, Manager: cal.NewMaxFreq(),
		RPS: rps, Warmup: dur / 5, Duration: dur, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed at %.0f RPS for %v:\n", rps, dur)
	fmt.Printf("  maxfreq: %5.1f W  p99 %v\n", mx.AvgPowerW, sim.Time(mx.TailAtQoSPct))
	fmt.Printf("  retail:  %5.1f W  p99 %v  QoS met %v  (saving %.1f%%)\n",
		rt.AvgPowerW, sim.Time(rt.TailAtQoSPct), rt.QoSMet,
		(1-rt.AvgPowerW/mx.AvgPowerW)*100)
}
