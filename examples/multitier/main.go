// Multitier: the paper's cluster-deployment story (§VII-A). A search
// front-end (Xapian-like) calls an in-memory store back-end (Silo-like);
// only the end-to-end p99 target is given. The cluster scheduler splits
// the budget across tiers in proportion to their profiled tails, and one
// ReTail instance per tier manages power against its own per-node target.
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"retail/internal/cluster"
	"retail/internal/core"
	"retail/internal/sim"
	"retail/internal/workload"
)

func main() {
	endToEnd := workload.QoS{Latency: 20e-3, Percentile: 99}
	tiers := []*cluster.Tier{
		{App: workload.NewXapian(), Workers: 4}, // search tier
		{App: workload.NewSilo(), Workers: 4},   // storage tier
	}

	// 1. The cluster scheduler allocates per-tier budgets (0 samples =
	// the default profiling draw).
	profiled, err := cluster.AllocateBudgets(endToEnd, tiers, 0.1, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end %v split across tiers:\n", endToEnd)
	for i, t := range tiers {
		fmt.Printf("  tier %d (%s): profiled p95 %v → budget %v\n",
			i, t.App.Name(), profiled[i], t.Budget)
	}

	// 2. Each tier gets its own calibrated ReTail runtime.
	e := sim.NewEngine()
	platform := core.DefaultPlatform()
	pipe, err := cluster.NewPipeline(e, endToEnd, tiers, platform, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Load the pipeline and measure.
	rps := core.CalibrateMaxLoad(tiers[0].App, platform.WithWorkers(tiers[0].Workers), 1) * 0.5
	gen := workload.NewGenerator(tiers[0].App, rps, 7, pipe.Submit)
	gen.Start(e)
	e.At(2, "measure", func(en *sim.Engine) { pipe.ResetEnergy(en) })
	e.Run(12)
	gen.Stop()

	tail, _ := pipe.TailLatency()
	fmt.Printf("\nat %.0f RPS end-to-end:\n", rps)
	fmt.Printf("  completed        %d requests\n", pipe.Completed())
	fmt.Printf("  end-to-end p99   %v (target %v, met: %v)\n",
		sim.Time(tail), endToEnd.Latency, pipe.QoSMet())
	fmt.Printf("  pipeline power   %.1f W\n", pipe.PowerW(e.Now()))
}
